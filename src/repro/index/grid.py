"""The grid index of Section IV (Figure 1).

Construction follows the paper exactly:

1. points are first **binned in unit-width x/y bins and sorted** so that
   spatially close points are close in memory (this also makes a strided
   sample of point ids a spatially uniform sample — the property the
   batching scheme of Section VI relies on);
2. a grid of ε×ε cells covers the data extent; each cell ``C_h`` (linear
   id ``h``) stores a range ``[A_min_h, A_max_h]`` into the **lookup
   array** ``A``;
3. ``A`` holds point ids grouped by cell, so ``|A| = |D|`` — no per-cell
   over-allocation.

Because the cells have side ε, the ε-neighborhood of a point is contained
in its own cell plus the 8 adjacent cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._nputil import run_boundaries
from repro.index.base import as_points

__all__ = ["GridIndex", "GridStats"]

#: refuse to build grids with more cells than this (degenerate ε)
DEFAULT_MAX_CELLS = 200_000_000

_NEIGHBOR_OFFSETS = np.array(
    [(dx, dy) for dy in (-1, 0, 1) for dx in (-1, 0, 1)], dtype=np.int64
)


@dataclass(frozen=True)
class GridStats:
    """Summary statistics used by benches and the shared-kernel schedule."""

    n_points: int
    n_cells: int
    n_nonempty_cells: int
    max_points_per_cell: int
    mean_points_per_nonempty_cell: float


@dataclass
class GridIndex:
    """ε-cell grid over 2-D points (the paper's ``G`` and ``A``)."""

    eps: float
    xmin: float
    ymin: float
    nx: int
    ny: int
    #: points sorted into spatial (unit-bin) order — the device's ``D``
    points: np.ndarray
    #: permutation such that ``points == original_points[sort_order]``
    sort_order: np.ndarray
    #: linear cell id of each (sorted) point
    cell_of_point: np.ndarray
    #: the lookup array ``A``: point ids grouped by cell (|A| = |D|)
    lookup: np.ndarray
    #: per-cell inclusive range into ``A`` (−1 marks an empty cell)
    cell_min: np.ndarray
    cell_max: np.ndarray
    #: sorted ids of non-empty cells (schedule ``S`` for GPUCalcShared)
    nonempty_cells: np.ndarray

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        points: np.ndarray,
        eps: float,
        *,
        max_cells: int = DEFAULT_MAX_CELLS,
        presorted: bool = False,
    ) -> "GridIndex":
        """Build the index for a fixed ``eps``.

        ``presorted=True`` skips the unit-bin sort (used when the caller
        already holds spatially sorted points, e.g. when re-indexing the
        same dataset for a new ε in scenario S2).
        """
        pts = as_points(points)
        if eps <= 0:
            raise ValueError("eps must be positive")
        if len(pts) == 0:
            raise ValueError("cannot index an empty dataset")

        if presorted:
            order = np.arange(len(pts), dtype=np.int64)
        else:
            order = cls.spatial_sort_order(pts)
            pts = np.ascontiguousarray(pts[order])

        xmin, ymin = pts.min(axis=0)
        xmax, ymax = pts.max(axis=0)
        nx = max(1, int(np.floor((xmax - xmin) / eps)) + 1)
        ny = max(1, int(np.floor((ymax - ymin) / eps)) + 1)
        if nx * ny > max_cells:
            raise ValueError(
                f"grid would have {nx * ny} cells (> max_cells={max_cells}); "
                "eps is degenerate for this extent"
            )

        cx = np.floor((pts[:, 0] - xmin) / eps).astype(np.int64)
        cy = np.floor((pts[:, 1] - ymin) / eps).astype(np.int64)
        np.clip(cx, 0, nx - 1, out=cx)
        np.clip(cy, 0, ny - 1, out=cy)
        cell_ids = cy * nx + cx

        lookup = np.argsort(cell_ids, kind="stable").astype(np.int64)
        sorted_cells = cell_ids[lookup]
        uniq, starts, ends = run_boundaries(sorted_cells)

        cell_min = np.full(nx * ny, -1, dtype=np.int64)
        cell_max = np.full(nx * ny, -1, dtype=np.int64)
        cell_min[uniq] = starts
        cell_max[uniq] = ends - 1  # inclusive, as in the paper's Figure 1

        return cls(
            eps=float(eps),
            xmin=float(xmin),
            ymin=float(ymin),
            nx=nx,
            ny=ny,
            points=pts,
            sort_order=order,
            cell_of_point=cell_ids,
            lookup=lookup,
            cell_min=cell_min,
            cell_max=cell_max,
            nonempty_cells=uniq.astype(np.int64),
        )

    @staticmethod
    def spatial_sort_order(points: np.ndarray) -> np.ndarray:
        """Order points by unit-width x/y bins (paper's locality sort)."""
        bx = np.floor(points[:, 0]).astype(np.int64)
        by = np.floor(points[:, 1]).astype(np.int64)
        # lexsort: primary key last — bin-x, then bin-y, then exact coords
        return np.lexsort((points[:, 1], points[:, 0], by, bx)).astype(np.int64)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    @property
    def n_cells(self) -> int:
        return self.nx * self.ny

    def cell_coords(self, h: np.ndarray | int) -> tuple[np.ndarray, np.ndarray]:
        h = np.asarray(h, dtype=np.int64)
        return h % self.nx, h // self.nx

    def neighbor_cells(self, h: int) -> np.ndarray:
        """Linear ids of the ≤9 cells that can contain ε-neighbors of
        points in cell ``h`` (the paper's ``getNeighborCells``)."""
        cx, cy = int(h) % self.nx, int(h) // self.nx
        nbr_x = cx + _NEIGHBOR_OFFSETS[:, 0]
        nbr_y = cy + _NEIGHBOR_OFFSETS[:, 1]
        ok = (nbr_x >= 0) & (nbr_x < self.nx) & (nbr_y >= 0) & (nbr_y < self.ny)
        return (nbr_y[ok] * self.nx + nbr_x[ok]).astype(np.int64)

    def neighbor_cells_of_points(self, cell_ids: np.ndarray) -> np.ndarray:
        """Vectorized 9-neighborhood: returns ``(len(cell_ids), 9)`` linear
        ids with ``-1`` for out-of-grid positions."""
        cell_ids = np.asarray(cell_ids, dtype=np.int64)
        cx = cell_ids % self.nx
        cy = cell_ids // self.nx
        nbr_x = cx[:, None] + _NEIGHBOR_OFFSETS[None, :, 0]
        nbr_y = cy[:, None] + _NEIGHBOR_OFFSETS[None, :, 1]
        ok = (nbr_x >= 0) & (nbr_x < self.nx) & (nbr_y >= 0) & (nbr_y < self.ny)
        out = nbr_y * self.nx + nbr_x
        out[~ok] = -1
        return out

    def cell_point_ids(self, h: int) -> np.ndarray:
        """Point ids (into the sorted ``points``) inside cell ``h``."""
        lo = self.cell_min[h]
        if lo < 0:
            return np.empty(0, dtype=np.int64)
        return self.lookup[lo : self.cell_max[h] + 1]

    def candidate_ids(self, point_id: int) -> np.ndarray:
        """All point ids in the ≤9 cells around ``point_id``'s cell."""
        cells = self.neighbor_cells(int(self.cell_of_point[point_id]))
        parts = [self.cell_point_ids(h) for h in cells]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    def range_query(self, point_id: int, eps: Optional[float] = None) -> np.ndarray:
        """ε-range query (``SpatialIndex`` protocol); ``eps`` must match
        the construction ε if given."""
        if eps is not None and not np.isclose(eps, self.eps):
            raise ValueError(
                f"grid was built for eps={self.eps}; cannot query eps={eps}"
            )
        cand = self.candidate_ids(point_id)
        p = self.points[point_id]
        d2 = ((self.points[cand] - p) ** 2).sum(axis=1)
        return cand[d2 <= self.eps * self.eps]

    # ------------------------------------------------------------------
    # stats / export
    # ------------------------------------------------------------------
    def stats(self) -> GridStats:
        counts = self.cell_max[self.nonempty_cells] - self.cell_min[self.nonempty_cells] + 1
        return GridStats(
            n_points=len(self.points),
            n_cells=self.n_cells,
            n_nonempty_cells=len(self.nonempty_cells),
            max_points_per_cell=int(counts.max()) if len(counts) else 0,
            mean_points_per_nonempty_cell=float(counts.mean()) if len(counts) else 0.0,
        )

    def device_arrays(self) -> dict[str, np.ndarray]:
        """The arrays Algorithm 4 ships to the device (D, G, A)."""
        return {
            "D": self.points,
            "A": self.lookup,
            "G_min": self.cell_min,
            "G_max": self.cell_max,
        }
