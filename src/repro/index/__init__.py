"""Spatial indexing substrates.

* :class:`~repro.index.grid.GridIndex` — the ε-cell grid of Section IV
  (arrays ``G`` and ``A`` of Figure 1), used by the GPU kernels.
* :class:`~repro.index.rtree.RTree` — the CPU R-tree used by the paper's
  sequential reference implementation.
* :class:`~repro.index.base.BruteForceIndex` — O(n) scan, the ground
  truth for tests.
"""

from repro.index.base import BruteForceIndex, SpatialIndex
from repro.index.grid import GridIndex
from repro.index.rtree import RTree

__all__ = ["SpatialIndex", "BruteForceIndex", "GridIndex", "RTree"]
