"""Index protocol and the brute-force reference index."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["SpatialIndex", "BruteForceIndex", "as_points"]


def as_points(points: np.ndarray) -> np.ndarray:
    """Validate and normalize a 2-D point array to float64 ``(n, 2)``."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) point array, got shape {pts.shape}")
    if not np.all(np.isfinite(pts)):
        raise ValueError("points must be finite")
    return np.ascontiguousarray(pts)


@runtime_checkable
class SpatialIndex(Protocol):
    """What DBSCAN needs from an index: an ε-range query."""

    points: np.ndarray

    def range_query(self, point_id: int, eps: float) -> np.ndarray:
        """IDs of all points within ``eps`` of point ``point_id``
        (inclusive boundary, including the point itself)."""
        ...


class BruteForceIndex:
    """O(n) scan per query — the semantic ground truth.

    Used by tests to validate the grid index, the R-tree, and both GPU
    kernels; never used on the hot path.
    """

    def __init__(self, points: np.ndarray):
        self.points = as_points(points)

    def __len__(self) -> int:
        return len(self.points)

    def range_query(self, point_id: int, eps: float) -> np.ndarray:
        p = self.points[point_id]
        d2 = ((self.points - p) ** 2).sum(axis=1)
        return np.flatnonzero(d2 <= eps * eps)

    def range_query_coords(self, xy: np.ndarray, eps: float) -> np.ndarray:
        d2 = ((self.points - np.asarray(xy)) ** 2).sum(axis=1)
        return np.flatnonzero(d2 <= eps * eps)

    def all_pairs(self, eps: float) -> tuple[np.ndarray, np.ndarray]:
        """All ``(i, j)`` with ``dist <= eps`` (including ``i == j``),
        sorted by key then value — the ground-truth neighbor relation."""
        pts = self.points
        d2 = (
            (pts[:, None, :] - pts[None, :, :]) ** 2
        ).sum(axis=2)
        keys, values = np.nonzero(d2 <= eps * eps)
        return keys.astype(np.int64), values.astype(np.int64)
