"""Admission control for the long-lived clustering service.

A service that queues unboundedly does not degrade, it collapses:
latency grows without limit and every request eventually misses its
deadline anyway.  The controller here bounds three resources *at
arrival time* — before any work is done — and rejects with a typed
error instead of queueing:

* **queue depth** — admitted-but-unstarted requests (``max_queue``);
* **per-tenant inflight** — one tenant cannot monopolize the workers;
* **memory grants** — each admitted request holds an estimated device
  grant (``bytes_per_point x n``, the same bounded-grant idea as
  :attr:`~repro.core.sharding.ShardConfig.device_mem_bytes`) against a
  global budget for the span of its execution.

Crossing the *high-water mark* (a fraction of ``max_queue``) does not
reject yet — it flags the request for graceful degradation
(:mod:`repro.service.degrade`), so the service sheds quality before it
sheds requests.

All accounting runs on the virtual millisecond clock of
:class:`repro.hostsim.WorkerPool`: a grant is "queued" while its start
instant is in the future and "inflight" until its end instant passes.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "ServiceError",
    "Overloaded",
    "DeadlineExceeded",
    "UnknownDataset",
    "ExecutionFailed",
    "AdmissionConfig",
    "Admission",
    "AdmissionStats",
    "AdmissionController",
]


class ServiceError(RuntimeError):
    """Base of the service's typed request-level errors.

    Every rejection the service produces is one of the concrete
    subclasses below; ``code`` is the stable machine-readable name
    carried on the :class:`~repro.service.server.Response`.
    """

    code = "service_error"


class Overloaded(ServiceError):
    """Admission refused: queue full, tenant cap, memory budget, or all
    devices quarantined.  Retry later (after backoff) may succeed."""

    code = "overloaded"


class DeadlineExceeded(ServiceError):
    """The request's deadline cannot be met (or expired mid-service)."""

    code = "deadline_exceeded"


class UnknownDataset(ServiceError):
    """The request names a dataset_id never registered with the service."""

    code = "unknown_dataset"


class ExecutionFailed(ServiceError):
    """Execution failed beyond recovery: a fatal (non-retryable) fault,
    or the retry budget was exhausted with no degraded fallback."""

    code = "execution_failed"


@dataclass(frozen=True)
class AdmissionConfig:
    """Tunables of the admission controller."""

    #: maximum admitted-but-unstarted requests before typed rejection
    max_queue: int = 8
    #: queue fraction beyond which new requests are served degraded
    high_water: float = 0.75
    #: concurrent (queued + executing) requests allowed per tenant
    per_tenant_inflight: int = 4
    #: global memory-grant budget; ``None`` disables the memory gate
    memory_budget_bytes: Optional[int] = None
    #: grant estimate per dataset point (table rows + staging share)
    bytes_per_point: int = 48

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if not 0.0 < self.high_water <= 1.0:
            raise ValueError("high_water must be in (0, 1]")
        if self.per_tenant_inflight < 1:
            raise ValueError("per_tenant_inflight must be >= 1")
        if self.memory_budget_bytes is not None and self.memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        if self.bytes_per_point < 1:
            raise ValueError("bytes_per_point must be >= 1")

    @property
    def high_water_depth(self) -> int:
        """Queue depth at which degradation kicks in."""
        return max(1, math.ceil(self.high_water * self.max_queue))


@dataclass(frozen=True)
class Admission:
    """A successful admission decision."""

    tenant: str
    est_bytes: int
    #: the queue has passed the high-water mark — serve degraded
    degrade_hint: bool
    #: queue depth observed at admission (for stats / responses)
    queue_depth: int


@dataclass
class _Grant:
    tenant: str
    est_bytes: int
    start_ms: float
    end_ms: float


@dataclass
class AdmissionStats:
    admitted: int = 0
    rejections: Counter = field(default_factory=Counter)
    degrade_hints: int = 0
    peak_queue: int = 0
    peak_granted_bytes: int = 0

    @property
    def rejected(self) -> int:
        return sum(self.rejections.values())

    def as_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "rejections": dict(self.rejections),
            "degrade_hints": self.degrade_hints,
            "peak_queue": self.peak_queue,
            "peak_granted_bytes": self.peak_granted_bytes,
        }


class AdmissionController:
    """Bounded-queue admission with per-tenant and memory gates.

    Intended call pattern per request (single-threaded event loop):
    ``admit(...)`` at arrival — raises :class:`Overloaded` or returns an
    :class:`Admission` — then, once the worker pool has quoted the start
    and the execution's virtual duration is known, ``commit(...)`` books
    the grant so later arrivals see it.
    """

    def __init__(self, config: Optional[AdmissionConfig] = None):
        self.config = config or AdmissionConfig()
        self._grants: list[_Grant] = []
        self.stats = AdmissionStats()

    # ------------------------------------------------------------------
    # observation (all on the virtual clock)
    # ------------------------------------------------------------------
    def _prune(self, now_ms: float) -> None:
        self._grants = [g for g in self._grants if g.end_ms > now_ms]

    def queue_depth(self, now_ms: float) -> int:
        """Admitted requests that have not started at ``now_ms``."""
        return sum(1 for g in self._grants if g.start_ms > now_ms)

    def inflight(self, now_ms: float, tenant: Optional[str] = None) -> int:
        """Admitted requests not finished at ``now_ms`` (optionally per
        tenant) — queued and executing alike."""
        return sum(
            1
            for g in self._grants
            if g.end_ms > now_ms and (tenant is None or g.tenant == tenant)
        )

    def granted_bytes(self, now_ms: float) -> int:
        """Memory grants held by unfinished requests at ``now_ms``."""
        return sum(g.est_bytes for g in self._grants if g.end_ms > now_ms)

    # ------------------------------------------------------------------
    # the gate
    # ------------------------------------------------------------------
    def admit(self, tenant: str, n_points: int, now_ms: float) -> Admission:
        """Admit or raise :class:`Overloaded` (typed, with the reason)."""
        cfg = self.config
        self._prune(now_ms)
        depth = self.queue_depth(now_ms)
        if depth >= cfg.max_queue:
            self.stats.rejections["queue_full"] += 1
            raise Overloaded(
                f"admission queue full ({depth}/{cfg.max_queue} waiting)"
            )
        if self.inflight(now_ms, tenant) >= cfg.per_tenant_inflight:
            self.stats.rejections["tenant_limit"] += 1
            raise Overloaded(
                f"tenant {tenant!r} at its inflight limit "
                f"({cfg.per_tenant_inflight})"
            )
        est = int(n_points) * cfg.bytes_per_point
        if cfg.memory_budget_bytes is not None:
            held = self.granted_bytes(now_ms)
            if held + est > cfg.memory_budget_bytes:
                self.stats.rejections["memory_budget"] += 1
                raise Overloaded(
                    f"memory grant denied ({held} held + {est} requested "
                    f"> {cfg.memory_budget_bytes} budget)"
                )
        hint = depth >= cfg.high_water_depth
        self.stats.admitted += 1
        if hint:
            self.stats.degrade_hints += 1
        self.stats.peak_queue = max(self.stats.peak_queue, depth + 1)
        return Admission(
            tenant=tenant, est_bytes=est, degrade_hint=hint, queue_depth=depth
        )

    def commit(self, admission: Admission, start_ms: float, end_ms: float) -> None:
        """Book an admitted request's grant over its execution span."""
        if end_ms < start_ms:
            raise ValueError("grant ends before it starts")
        self._grants.append(
            _Grant(
                tenant=admission.tenant,
                est_bytes=admission.est_bytes,
                start_ms=float(start_ms),
                end_ms=float(end_ms),
            )
        )
        self.stats.peak_granted_bytes = max(
            self.stats.peak_granted_bytes, self.granted_bytes(start_ms)
        )

    def record_rejection(self, reason: str) -> None:
        """Count a post-admission typed rejection (deadline, execution)."""
        self.stats.rejections[reason] += 1
