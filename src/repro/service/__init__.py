"""Long-lived clustering service over the HYBRID-DBSCAN machinery.

``repro serve``: admission control, deadlines, an epoch-keyed LRU
result cache, retry/backoff with per-slot circuit breaking, and
graceful degradation (stale / sampled answers) under overload — all on
a deterministic virtual clock.  See DESIGN.md §14.
"""

from repro.service.admission import (
    Admission,
    AdmissionConfig,
    AdmissionController,
    AdmissionStats,
    DeadlineExceeded,
    ExecutionFailed,
    Overloaded,
    ServiceError,
    UnknownDataset,
)
from repro.service.cache import CacheStats, ResultCache, TableEntry
from repro.service.degrade import (
    CostTracker,
    DegradeConfig,
    DegradeDecision,
    choose_mode,
    sampled_labels,
)
from repro.service.retry import CircuitBreaker, RetryPolicy
from repro.service.server import (
    ClusteringService,
    Response,
    ServeConfig,
    TraceResult,
)
from repro.service.trace import Request, TraceEvent, make_trace

__all__ = [
    "ServiceError",
    "Overloaded",
    "DeadlineExceeded",
    "UnknownDataset",
    "ExecutionFailed",
    "AdmissionConfig",
    "Admission",
    "AdmissionStats",
    "AdmissionController",
    "CacheStats",
    "TableEntry",
    "ResultCache",
    "RetryPolicy",
    "CircuitBreaker",
    "DegradeConfig",
    "DegradeDecision",
    "CostTracker",
    "choose_mode",
    "sampled_labels",
    "ServeConfig",
    "Response",
    "TraceResult",
    "ClusteringService",
    "Request",
    "TraceEvent",
    "make_trace",
]
