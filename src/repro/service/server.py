"""The long-lived clustering service: ``repro serve``.

A request loop in front of the existing HYBRID-DBSCAN machinery.  Each
:class:`~repro.service.trace.Request` ``(dataset_id, eps, minpts,
deadline_ms, tenant)`` flows through a fixed state machine::

    admission ──► cache ──► execute (retry + breaker) ──► respond
        │           │                │
        │ reject    │ hit            │ budget/retries/devices exhausted
        ▼           ▼                ▼
    Overloaded    exact          degrade: stale ─► sampled ─► typed reject

and ends in **exactly one** of: an exact result (bit-identical to a
direct :meth:`HybridDBSCAN.fit <repro.core.HybridDBSCAN.fit>` on that
epoch's points), a degraded result flagged as such (``stale=True`` or
``sample_fraction > 0``), or a typed rejection
(:class:`~repro.service.admission.ServiceError` subclass on
:attr:`Response.error`) — never an unhandled exception.

Time is *virtual*: queueing and deadlines run on the millisecond clock
of :class:`~repro.hostsim.WorkerPool`, advanced by modeled device
milliseconds (plus injected ``slowdown`` stalls and backoff delays),
while the actual label computation happens synchronously during
:meth:`ClusteringService.submit`.  That makes every overload, timeout,
retry, and breaker-trip path deterministic and property-testable.

Epoch semantics: a request is served against the dataset epoch current
at its *arrival*; an epoch bump invalidates the cache by keying (older
entries stay addressable only as flagged-stale degraded answers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.hybrid_dbscan import HybridDBSCAN
from repro.core.table_dbscan import NOISE, dbscan_from_table
from repro.gpusim.device import Device
from repro.gpusim.faults import FaultInjector, classify_fault, derive_seed
from repro.hostsim import WorkerPool
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    DeadlineExceeded,
    ExecutionFailed,
    Overloaded,
    ServiceError,
    UnknownDataset,
)
from repro.service.cache import ResultCache, TableEntry
from repro.service.degrade import (
    CostTracker,
    DegradeConfig,
    choose_mode,
    sampled_labels,
)
from repro.service.retry import CircuitBreaker, RetryPolicy
from repro.service.trace import Request, TraceEvent

__all__ = ["ServeConfig", "Response", "TraceResult", "ClusteringService"]


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of one :class:`ClusteringService` instance."""

    #: simulated host workers executing admitted requests
    n_workers: int = 2
    #: simulated device slots the breaker quarantines over
    n_device_slots: int = 2
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    degrade: DegradeConfig = field(default_factory=DegradeConfig)
    breaker_threshold: int = 3
    breaker_cooldown_ms: float = 250.0
    max_cached_tables: int = 8
    max_cached_label_sets: int = 64
    #: stale epochs kept addressable after a bump (degraded serving)
    stale_keep_epochs: int = 1
    #: virtual cost of serving from cache
    cache_hit_cost_ms: float = 0.05
    #: virtual host-clustering rate for table hits (pairs per ms)
    cluster_rate_pairs_per_ms: float = 50_000.0
    kernel: str = "global"
    backend: str = "vector"
    cluster_on: str = "host"
    seed: int = 0
    #: sanitizer toggle for per-attempt devices (None = GPUSAN env)
    sanitize: Optional[bool] = None
    #: per-attempt fault injection: (request, slot, attempt) -> injector
    fault_factory: Optional[
        Callable[[Request, int, int], Optional[FaultInjector]]
    ] = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.n_device_slots < 1:
            raise ValueError("n_device_slots must be >= 1")
        if self.stale_keep_epochs < 0:
            raise ValueError("stale_keep_epochs must be >= 0")
        if self.cache_hit_cost_ms < 0:
            raise ValueError("cache_hit_cost_ms must be non-negative")
        if self.cluster_rate_pairs_per_ms <= 0:
            raise ValueError("cluster_rate_pairs_per_ms must be positive")


@dataclass
class Response:
    """Terminal outcome of one request — exactly one bucket."""

    request: Request
    #: "exact" | "degraded" | "rejected"
    status: str
    #: ServiceError.code for rejections, None otherwise
    error: Optional[str] = None
    error_detail: str = ""
    labels: Optional[np.ndarray] = None
    #: dataset epoch the answer describes (stale answers: the old epoch)
    epoch: Optional[int] = None
    stale: bool = False
    sample_fraction: float = 0.0
    #: "label_hit" | "table_hit" | "stale" | "miss" | None (rejected)
    cache: Optional[str] = None
    attempts: int = 0
    backoff_ms: float = 0.0
    queue_ms: float = 0.0
    exec_ms: float = 0.0
    latency_ms: float = 0.0
    #: exact answer that finished after its deadline (still exact)
    deadline_missed: bool = False
    worker: Optional[int] = None
    device_slot: Optional[int] = None

    @property
    def degraded(self) -> bool:
        return self.status == "degraded"

    @property
    def rejected(self) -> bool:
        return self.status == "rejected"

    @property
    def n_clusters(self) -> int:
        if self.labels is None:
            return 0
        return int(self.labels.max()) + 1 if (self.labels != NOISE).any() else 0

    @property
    def n_noise(self) -> int:
        return 0 if self.labels is None else int((self.labels == NOISE).sum())

    def as_dict(self) -> dict:
        return {
            "seq": self.request.seq,
            "dataset": self.request.dataset_id,
            "eps": self.request.eps,
            "minpts": self.request.minpts,
            "tenant": self.request.tenant,
            "arrival_ms": self.request.arrival_ms,
            "status": self.status,
            "error": self.error,
            "error_detail": self.error_detail,
            "epoch": self.epoch,
            "stale": self.stale,
            "sample_fraction": self.sample_fraction,
            "cache": self.cache,
            "clusters": self.n_clusters,
            "noise": self.n_noise,
            "attempts": self.attempts,
            "backoff_ms": round(self.backoff_ms, 4),
            "queue_ms": round(self.queue_ms, 4),
            "exec_ms": round(self.exec_ms, 4),
            "latency_ms": round(self.latency_ms, 4),
            "deadline_missed": self.deadline_missed,
        }


@dataclass
class _Outcome:
    """Internal result of the serve stage (pre-booking)."""

    status: str
    exec_ms: float
    labels: Optional[np.ndarray] = None
    epoch: Optional[int] = None
    error: Optional[ServiceError] = None
    stale: bool = False
    sample_fraction: float = 0.0
    cache: Optional[str] = None
    attempts: int = 0
    backoff_ms: float = 0.0
    deadline_missed: bool = False
    device_slot: Optional[int] = None


@dataclass
class _DatasetState:
    points: np.ndarray
    epoch: int


@dataclass
class TraceResult:
    """Replay outcome of one request trace + service-side accounting."""

    responses: list
    admission: dict
    cache: dict
    breaker: dict
    utilization: float
    sanitizer_clean: bool

    def count(self, status: str) -> int:
        return sum(1 for r in self.responses if r.status == status)

    @property
    def shed_rate(self) -> float:
        n = len(self.responses)
        return self.count("rejected") / n if n else 0.0

    @property
    def degraded_rate(self) -> float:
        n = len(self.responses)
        return self.count("degraded") / n if n else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return float(self.cache.get("hit_rate", 0.0))

    def latency_percentile(self, p: float) -> float:
        """Latency percentile over served (non-rejected) requests."""
        lat = [r.latency_ms for r in self.responses if not r.rejected]
        return float(np.percentile(lat, p)) if lat else 0.0

    def as_dict(self, *, with_responses: bool = False) -> dict:
        out = {
            "requests": len(self.responses),
            "exact": self.count("exact"),
            "degraded": self.count("degraded"),
            "rejected": self.count("rejected"),
            "shed_rate": round(self.shed_rate, 4),
            "degraded_rate": round(self.degraded_rate, 4),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "latency_p50_ms": round(self.latency_percentile(50), 4),
            "latency_p95_ms": round(self.latency_percentile(95), 4),
            "latency_p99_ms": round(self.latency_percentile(99), 4),
            "utilization": round(self.utilization, 4),
            "admission": self.admission,
            "cache": self.cache,
            "breaker_trips": self.breaker.get("trips", 0),
            "sanitizer_clean": self.sanitizer_clean,
        }
        if with_responses:
            out["responses"] = [r.as_dict() for r in self.responses]
        return out


class ClusteringService:
    """Long-lived request loop over the HYBRID-DBSCAN machinery."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.admission = AdmissionController(self.config.admission)
        self.cache = ResultCache(
            max_tables=self.config.max_cached_tables,
            max_label_sets=self.config.max_cached_label_sets,
        )
        self.pool = WorkerPool(self.config.n_workers)
        self.breaker = CircuitBreaker(
            n_slots=self.config.n_device_slots,
            failure_threshold=self.config.breaker_threshold,
            cooldown_ms=self.config.breaker_cooldown_ms,
        )
        self.cost = CostTracker()
        self._datasets: dict[str, _DatasetState] = {}
        self._slot_use = [0] * self.config.n_device_slots
        self.responses: list[Response] = []
        #: False once any per-attempt sanitizer report was non-clean
        self.sanitizer_clean = True

    # ------------------------------------------------------------------
    # dataset registry
    # ------------------------------------------------------------------
    def register_dataset(
        self, dataset_id: str, points: np.ndarray, *, epoch: int = 0
    ) -> None:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] < 2 or len(pts) == 0:
            raise ValueError("points must be a non-empty (n, >=2) array")
        self._datasets[dataset_id] = _DatasetState(
            points=pts[:, :2].copy(), epoch=int(epoch)
        )

    def bump_epoch(
        self, dataset_id: str, points: Optional[np.ndarray] = None
    ) -> int:
        """Advance a dataset's epoch (optionally replacing its points);
        cache entries for the current epoch become stale, entries past
        the stale window are dropped."""
        ds = self._datasets.get(dataset_id)
        if ds is None:
            raise ValueError(f"dataset {dataset_id!r} not registered")
        ds.epoch += 1
        if points is not None:
            pts = np.asarray(points, dtype=np.float64)
            if pts.ndim != 2 or pts.shape[1] < 2 or len(pts) == 0:
                raise ValueError("points must be a non-empty (n, >=2) array")
            ds.points = pts[:, :2].copy()
        self.cache.evict_older(
            dataset_id, ds.epoch, keep_epochs=self.config.stale_keep_epochs
        )
        return ds.epoch

    def epoch_of(self, dataset_id: str) -> int:
        return self._datasets[dataset_id].epoch

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> Response:
        """Serve one request; always returns a terminal Response."""
        now = float(request.arrival_ms)
        ds = self._datasets.get(request.dataset_id)
        if ds is None:
            self.admission.record_rejection("unknown_dataset")
            return self._finish_rejected(
                request,
                UnknownDataset(
                    f"dataset {request.dataset_id!r} is not registered"
                ),
                now,
            )
        try:
            adm = self.admission.admit(request.tenant, len(ds.points), now)
        except Overloaded as exc:
            return self._finish_rejected(request, exc, now)
        start = self.pool.peek_start(now)
        queue_ms = start - now
        budget: Optional[float] = None
        if request.deadline_ms is not None:
            budget = request.deadline_ms - queue_ms
            if budget <= 0:
                self.admission.record_rejection("deadline_exceeded")
                return self._finish_rejected(
                    request,
                    DeadlineExceeded(
                        f"queue wait {queue_ms:.2f}ms exceeds deadline "
                        f"{request.deadline_ms:.2f}ms"
                    ),
                    now,
                    queue_ms=queue_ms,
                )
        out = self._serve(request, ds, start, budget, adm.degrade_hint)
        end = start + out.exec_ms
        worker = self.pool.commit(start, out.exec_ms)
        self.admission.commit(adm, start, end)
        resp = Response(
            request=request,
            status=out.status,
            error=out.error.code if out.error is not None else None,
            error_detail=str(out.error) if out.error is not None else "",
            labels=out.labels,
            epoch=out.epoch,
            stale=out.stale,
            sample_fraction=out.sample_fraction,
            cache=out.cache,
            attempts=out.attempts,
            backoff_ms=out.backoff_ms,
            queue_ms=queue_ms,
            exec_ms=out.exec_ms,
            latency_ms=end - now,
            deadline_missed=out.deadline_missed,
            worker=worker,
            device_slot=out.device_slot,
        )
        self.responses.append(resp)
        return resp

    def _finish_rejected(
        self,
        request: Request,
        error: ServiceError,
        now_ms: float,
        *,
        queue_ms: float = 0.0,
    ) -> Response:
        """Terminal rejection before any worker time was booked."""
        resp = Response(
            request=request,
            status="rejected",
            error=error.code,
            error_detail=str(error),
            queue_ms=queue_ms,
            latency_ms=queue_ms,
        )
        self.responses.append(resp)
        return resp

    def run_trace(self, events: list[TraceEvent]) -> TraceResult:
        """Replay a trace in arrival order (ties keep list order)."""
        first = len(self.responses)
        for ev in sorted(events, key=lambda e: e.arrival_ms):
            if ev.kind == "bump":
                self.bump_epoch(ev.dataset_id, ev.points)
            else:
                assert ev.request is not None
                self.submit(ev.request)
        return TraceResult(
            responses=self.responses[first:],
            admission=self.admission.stats.as_dict(),
            cache=self.cache.stats.as_dict(),
            breaker=self.breaker.as_dict(),
            utilization=self.pool.utilization,
            sanitizer_clean=self.sanitizer_clean,
        )

    # ------------------------------------------------------------------
    # serve stages
    # ------------------------------------------------------------------
    def _serve(
        self,
        request: Request,
        ds: _DatasetState,
        start_ms: float,
        budget_ms: Optional[float],
        degrade_hint: bool,
    ) -> _Outcome:
        dsid, epoch = request.dataset_id, ds.epoch
        eps, minpts = request.eps, request.minpts
        labels = self.cache.get_labels(dsid, epoch, eps, minpts)
        if labels is not None:
            return _Outcome(
                status="exact",
                exec_ms=self.config.cache_hit_cost_ms,
                labels=labels,
                epoch=epoch,
                cache="label_hit",
            )
        entry = self.cache.get_table(dsid, epoch, eps)
        if entry is not None:
            labels = self._cluster_cached(entry, minpts)
            self.cache.put_labels(dsid, epoch, eps, minpts, labels)
            cost = max(
                self.config.cache_hit_cost_ms,
                entry.table.total_pairs / self.config.cluster_rate_pairs_per_ms,
            )
            return _Outcome(
                status="exact",
                exec_ms=cost,
                labels=labels,
                epoch=epoch,
                cache="table_hit",
            )
        self.cache.record_miss()
        estimate = self.cost.estimate_ms(dsid, len(ds.points))
        if estimate is not None:
            estimate *= self.config.degrade.estimate_margin
        decision = choose_mode(
            self.config.degrade,
            budget_ms=budget_ms,
            estimate_ms=estimate,
            overloaded=degrade_hint,
            stale_available=self.cache.has_stale(dsid, epoch, eps, minpts),
        )
        if decision.mode == "reject":
            err: ServiceError = (
                Overloaded(decision.reason)
                if degrade_hint
                else DeadlineExceeded(decision.reason)
            )
            self.admission.record_rejection(err.code)
            return _Outcome(status="rejected", exec_ms=0.0, error=err)
        if decision.mode == "stale":
            return self._serve_stale(request, ds, elapsed_ms=0.0)
        if decision.mode == "sampled":
            return self._serve_sampled(
                request, ds, decision.sample_fraction, elapsed_ms=0.0
            )
        return self._execute_exact(request, ds, start_ms, budget_ms)

    def _cluster_cached(self, entry: TableEntry, minpts: int) -> np.ndarray:
        """Host clustering from a cached table — the exact
        :meth:`HybridDBSCAN.cluster_table` host path."""
        labels_sorted = dbscan_from_table(entry.table, minpts)
        labels = np.empty_like(labels_sorted)
        labels[entry.grid.sort_order] = labels_sorted
        return labels

    def _serve_stale(
        self, request: Request, ds: _DatasetState, *, elapsed_ms: float,
        attempts: int = 0, backoff_ms: float = 0.0,
    ) -> _Outcome:
        dsid, epoch = request.dataset_id, ds.epoch
        eps, minpts = request.eps, request.minpts
        hit = self.cache.stale_labels(dsid, epoch, eps, minpts)
        if hit is not None:
            stale_epoch, labels = hit
            cost = self.config.cache_hit_cost_ms
        else:
            entry = self.cache.stale_table(dsid, epoch, eps)
            assert entry is not None, "stale path entered without stale entry"
            stale_epoch = entry.epoch
            labels = self._cluster_cached(entry, minpts)
            # stale labels are cached under their own (old) epoch, so
            # they never alias a fresh answer
            self.cache.put_labels(dsid, stale_epoch, eps, minpts, labels)
            cost = max(
                self.config.cache_hit_cost_ms,
                entry.table.total_pairs / self.config.cluster_rate_pairs_per_ms,
            )
        return _Outcome(
            status="degraded",
            exec_ms=elapsed_ms + cost,
            labels=labels,
            epoch=stale_epoch,
            stale=True,
            cache="stale",
            attempts=attempts,
            backoff_ms=backoff_ms,
        )

    def _serve_sampled(
        self, request: Request, ds: _DatasetState, fraction: float, *,
        elapsed_ms: float, attempts: int = 0, backoff_ms: float = 0.0,
    ) -> _Outcome:
        device = self._make_device(injector=None)
        hybrid = self._make_hybrid(device)
        try:
            labels, _n_sampled = sampled_labels(
                ds.points, request.eps, request.minpts, fraction, hybrid=hybrid
            )
        except Exception as exc:  # degraded path is fault-free; anything
            # escaping here is a programming error — typed, not raised
            self._close_device(device)
            err = ExecutionFailed(f"sampled fallback failed: {exc!r}")
            self.admission.record_rejection(err.code)
            return _Outcome(
                status="rejected",
                exec_ms=elapsed_ms + device.profiler.total_device_ms(),
                error=err,
                attempts=attempts,
                backoff_ms=backoff_ms,
            )
        dur = device.profiler.total_device_ms()
        self._close_device(device)
        return _Outcome(
            status="degraded",
            exec_ms=elapsed_ms + dur,
            labels=labels,
            epoch=ds.epoch,
            sample_fraction=float(fraction),
            cache="miss",
            attempts=attempts,
            backoff_ms=backoff_ms,
        )

    # ------------------------------------------------------------------
    # exact execution under retry/backoff + circuit breaker
    # ------------------------------------------------------------------
    def _execute_exact(
        self,
        request: Request,
        ds: _DatasetState,
        start_ms: float,
        budget_ms: Optional[float],
    ) -> _Outcome:
        cfg = self.config
        dsid, epoch = request.dataset_id, ds.epoch
        eps, minpts = request.eps, request.minpts
        rng = np.random.default_rng(derive_seed(cfg.seed, request.seq))
        t = start_ms
        attempts = 0
        backoff_total = 0.0
        slot = None
        while attempts < cfg.retry.max_attempts:
            healthy = self.breaker.healthy_slots(t)
            if not healthy:
                return self._degraded_fallback(
                    request, ds,
                    reason="all device slots quarantined",
                    reject_with=Overloaded,
                    elapsed_ms=t - start_ms,
                    attempts=attempts,
                    backoff_ms=backoff_total,
                )
            slot = min(healthy, key=lambda s: (self._slot_use[s], s))
            self._slot_use[slot] += 1
            injector = (
                cfg.fault_factory(request, slot, attempts)
                if cfg.fault_factory is not None
                else None
            )
            device = self._make_device(injector=injector)
            hybrid = self._make_hybrid(device)
            attempts += 1
            try:
                grid, table, _timings = hybrid.build_table(ds.points, eps)
                labels = hybrid.cluster_table(grid, table, minpts)
            except Exception as exc:
                dur = device.profiler.total_device_ms()
                self._close_device(device)
                if classify_fault(exc) == "fatal":
                    err = ExecutionFailed(f"fatal fault: {exc!r}")
                    self.admission.record_rejection(err.code)
                    return _Outcome(
                        status="rejected",
                        exec_ms=(t - start_ms) + dur,
                        error=err,
                        attempts=attempts,
                        backoff_ms=backoff_total,
                        device_slot=slot,
                    )
                t += dur
                self.breaker.record_failure(slot, t)
                if attempts >= cfg.retry.max_attempts:
                    return self._degraded_fallback(
                        request, ds,
                        reason=(
                            f"retry budget exhausted after {attempts} "
                            f"attempts (last: {exc!r})"
                        ),
                        reject_with=ExecutionFailed,
                        elapsed_ms=t - start_ms,
                        attempts=attempts,
                        backoff_ms=backoff_total,
                    )
                delay = cfg.retry.backoff_ms(attempts, rng)
                t += delay
                backoff_total += delay
                if budget_ms is not None and (t - start_ms) >= budget_ms:
                    return self._degraded_fallback(
                        request, ds,
                        reason=(
                            f"deadline budget exhausted during retries "
                            f"(last: {exc!r})"
                        ),
                        reject_with=DeadlineExceeded,
                        elapsed_ms=t - start_ms,
                        attempts=attempts,
                        backoff_ms=backoff_total,
                    )
                continue
            dur = device.profiler.total_device_ms()
            self._close_device(device)
            self.breaker.record_success(slot)
            self.cost.observe(dsid, len(ds.points), dur)
            self.cache.put_table(
                dsid,
                TableEntry(
                    grid=grid,
                    table=table,
                    epoch=epoch,
                    eps=eps,
                    build_device_ms=dur,
                ),
            )
            self.cache.put_labels(dsid, epoch, eps, minpts, labels)
            exec_ms = (t - start_ms) + dur
            return _Outcome(
                status="exact",
                exec_ms=exec_ms,
                labels=labels,
                epoch=epoch,
                cache="miss",
                attempts=attempts,
                backoff_ms=backoff_total,
                deadline_missed=budget_ms is not None and exec_ms > budget_ms,
                device_slot=slot,
            )
        raise AssertionError("unreachable: retry loop exits via return")

    def _degraded_fallback(
        self,
        request: Request,
        ds: _DatasetState,
        *,
        reason: str,
        reject_with: type,
        elapsed_ms: float,
        attempts: int,
        backoff_ms: float,
    ) -> _Outcome:
        """Last resort after exact execution failed: stale, then sampled
        (unless the deadline is already gone), then typed rejection."""
        cfg = self.config.degrade
        if cfg.enabled:
            if cfg.allow_stale and self.cache.has_stale(
                request.dataset_id, ds.epoch, request.eps, request.minpts
            ):
                return self._serve_stale(
                    request, ds,
                    elapsed_ms=elapsed_ms,
                    attempts=attempts,
                    backoff_ms=backoff_ms,
                )
            if reject_with is not DeadlineExceeded:
                return self._serve_sampled(
                    request, ds, cfg.sample_fraction,
                    elapsed_ms=elapsed_ms,
                    attempts=attempts,
                    backoff_ms=backoff_ms,
                )
        err = reject_with(reason)
        self.admission.record_rejection(err.code)
        return _Outcome(
            status="rejected",
            exec_ms=elapsed_ms,
            error=err,
            attempts=attempts,
            backoff_ms=backoff_ms,
        )

    # ------------------------------------------------------------------
    # device plumbing
    # ------------------------------------------------------------------
    def _make_device(self, *, injector: Optional[FaultInjector]) -> Device:
        return Device(
            faults=injector,
            sanitize=self.config.sanitize,
            sanitize_mode="record",
        )

    def _make_hybrid(self, device: Device) -> HybridDBSCAN:
        return HybridDBSCAN(
            device,
            kernel=self.config.kernel,  # type: ignore[arg-type]
            backend=self.config.backend,  # type: ignore[arg-type]
            cluster_on=self.config.cluster_on,  # type: ignore[arg-type]
        )

    def _close_device(self, device: Device) -> None:
        report = device.close()
        if report is not None and not report.clean:
            self.sanitizer_clean = False

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "admission": self.admission.stats.as_dict(),
            "cache": self.cache.stats.as_dict(),
            "breaker": self.breaker.as_dict(),
            "utilization": self.pool.utilization,
            "slot_use": list(self._slot_use),
            "sanitizer_clean": self.sanitizer_clean,
        }
