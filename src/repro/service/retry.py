"""Retry/backoff and circuit breaking around device execution.

The shard supervisor (:mod:`repro.core.sharding`) already retries
*within* one batch job; the service layer retries *across* requests on
a long-lived pool of device slots, where two extra concerns appear:

* **backoff must be budgeted** — a retry is only worth taking if the
  jittered exponential delay still fits the request's remaining
  deadline, so :meth:`RetryPolicy.backoff_ms` is pure arithmetic on the
  virtual clock (seeded jitter via an explicit ``Generator`` — GS004);
* **failures must be correlated** — a device that keeps producing
  transient faults (classified by
  :func:`~repro.gpusim.classify_fault`) is probably sick, not unlucky.
  The :class:`CircuitBreaker` quarantines a slot after
  ``failure_threshold`` consecutive failures; its work retargets to the
  surviving slots (the same survivor-rescheduling move as the
  multi-device placement layer) and the slot is probed again after a
  virtual ``cooldown_ms``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RetryPolicy", "CircuitBreaker"]


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff under a deadline budget."""

    #: total execution attempts (first try included)
    max_attempts: int = 3
    base_backoff_ms: float = 5.0
    multiplier: float = 2.0
    #: uniform jitter fraction added on top of the exponential step
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_ms < 0:
            raise ValueError("base_backoff_ms must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_ms(self, failures: int, rng: np.random.Generator) -> float:
        """Virtual delay before the retry after the ``failures``-th
        consecutive failure (1-based); jitter drawn from ``rng``."""
        if failures < 1:
            raise ValueError("failures must be >= 1")
        raw = self.base_backoff_ms * self.multiplier ** (failures - 1)
        return raw * (1.0 + self.jitter * float(rng.random()))


@dataclass
class _SlotState:
    consecutive_failures: int = 0
    open_until_ms: float = float("-inf")
    trips: int = 0
    failures: int = 0
    successes: int = 0


@dataclass
class CircuitBreaker:
    """Per-slot quarantine on consecutive transient failures."""

    n_slots: int = 2
    failure_threshold: int = 3
    cooldown_ms: float = 250.0
    _slots: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_ms < 0:
            raise ValueError("cooldown_ms must be non-negative")
        for s in range(self.n_slots):
            self._slots[s] = _SlotState()

    def allowed(self, slot: int, now_ms: float) -> bool:
        return now_ms >= self._slots[slot].open_until_ms

    def healthy_slots(self, now_ms: float) -> list[int]:
        """Slots currently accepting work (closed, or cooldown expired)."""
        return [s for s in range(self.n_slots) if self.allowed(s, now_ms)]

    def record_success(self, slot: int) -> None:
        st = self._slots[slot]
        st.consecutive_failures = 0
        st.successes += 1

    def record_failure(self, slot: int, now_ms: float) -> bool:
        """Count one failure; returns True when this trips the breaker
        open (quarantined until ``now_ms + cooldown_ms``)."""
        st = self._slots[slot]
        st.failures += 1
        st.consecutive_failures += 1
        if st.consecutive_failures >= self.failure_threshold:
            st.open_until_ms = now_ms + self.cooldown_ms
            st.trips += 1
            st.consecutive_failures = 0
            return True
        return False

    @property
    def trips(self) -> int:
        return sum(st.trips for st in self._slots.values())

    def as_dict(self) -> dict:
        return {
            "n_slots": self.n_slots,
            "trips": self.trips,
            "slots": {
                s: {
                    "failures": st.failures,
                    "successes": st.successes,
                    "trips": st.trips,
                    "open_until_ms": st.open_until_ms,
                }
                for s, st in self._slots.items()
            },
        }
