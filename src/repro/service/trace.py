"""Requests and deterministic request traces for the serving loop.

The service is exercised by *traces*, not wall-clock load generators:
a trace is a list of :class:`TraceEvent` (requests and epoch bumps) on
the virtual millisecond clock, replayed in arrival order by
:meth:`~repro.service.server.ClusteringService.run_trace`.  Because
arrivals, the synthetic workload mix (:func:`make_trace`, seeded
``Generator`` streams only — GS004), injected faults, and execution
durations (modeled device ms) are all deterministic, every admission /
deadline / retry / degradation path replays bit-identically — overload
is a fixture, not a flake.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["Request", "TraceEvent", "make_trace"]


@dataclass(frozen=True)
class Request:
    """One clustering query against a registered dataset."""

    dataset_id: str
    eps: float
    minpts: int
    #: deadline relative to arrival (virtual ms); None = best-effort
    deadline_ms: Optional[float] = None
    tenant: str = "default"
    #: arrival instant on the service's virtual clock
    arrival_ms: float = 0.0
    #: trace sequence number (stable tiebreak + fault-injection key)
    seq: int = 0

    def __post_init__(self) -> None:
        if self.eps <= 0:
            raise ValueError("eps must be positive")
        if self.minpts < 1:
            raise ValueError("minpts must be >= 1")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive (or None)")
        if self.arrival_ms < 0:
            raise ValueError("arrival_ms must be non-negative")


@dataclass(frozen=True)
class TraceEvent:
    """A request arrival or a dataset epoch bump."""

    arrival_ms: float
    #: "request" | "bump"
    kind: str = "request"
    request: Optional[Request] = None
    #: for bumps: the dataset whose epoch advances
    dataset_id: str = ""
    #: for bumps: replacement points (None keeps the current points)
    points: Optional[np.ndarray] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("request", "bump"):
            raise ValueError(f"unknown trace event kind {self.kind!r}")
        if self.kind == "request" and self.request is None:
            raise ValueError("request events need a request")
        if self.kind == "bump" and not self.dataset_id:
            raise ValueError("bump events need a dataset_id")


def make_trace(
    dataset_id: str,
    *,
    n_requests: int,
    eps_choices: list,
    minpts_choices: list,
    mean_interarrival_ms: float,
    deadline_ms: Optional[float] = None,
    n_tenants: int = 1,
    bump_every: int = 0,
    seed: int = 0,
) -> list[TraceEvent]:
    """Seeded synthetic workload: Poisson-ish arrivals over a mix of
    ``(eps, minpts, tenant)``; every ``bump_every`` requests an epoch
    bump is interleaved (0 disables bumps).  Deterministic per seed."""
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if not eps_choices or not minpts_choices:
        raise ValueError("eps_choices and minpts_choices must be non-empty")
    if mean_interarrival_ms < 0:
        raise ValueError("mean_interarrival_ms must be non-negative")
    if n_tenants < 1:
        raise ValueError("n_tenants must be >= 1")
    rng = np.random.default_rng(seed)
    events: list[TraceEvent] = []
    t = 0.0
    for i in range(n_requests):
        t += float(rng.exponential(mean_interarrival_ms)) if (
            mean_interarrival_ms > 0
        ) else 0.0
        if bump_every and i and i % bump_every == 0:
            events.append(
                TraceEvent(arrival_ms=t, kind="bump", dataset_id=dataset_id)
            )
        events.append(
            TraceEvent(
                arrival_ms=t,
                request=Request(
                    dataset_id=dataset_id,
                    eps=float(eps_choices[int(rng.integers(len(eps_choices)))]),
                    minpts=int(
                        minpts_choices[int(rng.integers(len(minpts_choices)))]
                    ),
                    deadline_ms=deadline_ms,
                    tenant=f"tenant{int(rng.integers(n_tenants))}",
                    arrival_ms=t,
                    seq=i,
                ),
            )
        )
    return events
