"""Graceful degradation: bounded-quality answers instead of timeouts.

When the admission queue passes its high-water mark, or a request's
remaining deadline budget cannot fit a full neighbor-table build, the
service has three honest options, tried in order:

1. **stale** — serve cached results from the dataset's previous epoch
   (an exact answer to a slightly old question), flagged
   ``stale=True``;
2. **sampled** — the paper's sample fraction ``f`` turned into a
   quality knob: build on an evenly spread
   :func:`~repro.kernels.count_kernel.sample_point_ids` subset sized to
   the remaining budget, cluster the subset, and return full-length
   labels with unsampled points marked noise — flagged with the
   fraction used;
3. **reject** — a typed :class:`~repro.service.admission.ServiceError`
   when degradation is disabled.

Every degraded response carries ``degraded=True`` plus the specific
flag (``stale`` / ``sample_fraction``); exact responses never do.  The
full-build cost estimate feeding the decision is a per-dataset EWMA of
observed modeled device milliseconds (:class:`CostTracker`) — it
converges after the first exact build and is deterministic thereafter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.hybrid_dbscan import HybridDBSCAN
from repro.core.table_dbscan import NOISE
from repro.kernels.count_kernel import sample_point_ids

__all__ = [
    "DegradeConfig",
    "DegradeDecision",
    "CostTracker",
    "choose_mode",
    "sampled_labels",
]


@dataclass(frozen=True)
class DegradeConfig:
    """Tunables of the degradation policy."""

    enabled: bool = True
    #: default sample fraction for approximate builds
    sample_fraction: float = 0.25
    #: floor for budget-driven fraction shrinking
    min_sample_fraction: float = 0.05
    #: serve the previous epoch's cached answer when available
    allow_stale: bool = True
    #: safety factor applied to the full-build cost estimate
    estimate_margin: float = 1.25

    def __post_init__(self) -> None:
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        if not 0.0 < self.min_sample_fraction <= self.sample_fraction:
            raise ValueError(
                "min_sample_fraction must be in (0, sample_fraction]"
            )
        if self.estimate_margin < 1.0:
            raise ValueError("estimate_margin must be >= 1")


@dataclass(frozen=True)
class DegradeDecision:
    """Outcome of the admission → cache → execute → degrade policy."""

    #: "exact" | "stale" | "sampled" | "reject"
    mode: str
    reason: str = ""
    sample_fraction: float = 0.0


def choose_mode(
    cfg: DegradeConfig,
    *,
    budget_ms: Optional[float],
    estimate_ms: Optional[float],
    overloaded: bool,
    stale_available: bool,
) -> DegradeDecision:
    """Pick the serving mode for a cache-missing request.

    ``budget_ms`` is the deadline budget remaining at start (None =
    no deadline); ``estimate_ms`` the margin-adjusted full-build
    estimate (None = no history yet — optimistically try exact);
    ``overloaded`` the admission high-water hint.
    """
    deadline_tight = (
        budget_ms is not None
        and estimate_ms is not None
        and estimate_ms > budget_ms
    )
    if not overloaded and not deadline_tight:
        return DegradeDecision(mode="exact")
    reason = "queue over high-water mark" if overloaded else (
        f"full build estimate {estimate_ms:.2f}ms exceeds deadline "
        f"budget {budget_ms:.2f}ms"
    )
    if not cfg.enabled:
        return DegradeDecision(mode="reject", reason=reason)
    if cfg.allow_stale and stale_available:
        return DegradeDecision(mode="stale", reason=reason)
    fraction = cfg.sample_fraction
    if deadline_tight:
        # linear cost model: shrink f until the estimated cost fits
        assert budget_ms is not None and estimate_ms is not None
        fraction = min(fraction, budget_ms / estimate_ms)
        fraction = max(cfg.min_sample_fraction, fraction)
    return DegradeDecision(
        mode="sampled", reason=reason, sample_fraction=float(fraction)
    )


@dataclass
class CostTracker:
    """EWMA of exact-build modeled device ms per point, per dataset."""

    alpha: float = 0.5
    _per_point_ms: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")

    def observe(self, dataset_id: str, n_points: int, device_ms: float) -> None:
        if n_points <= 0:
            return
        per_point = device_ms / n_points
        prev = self._per_point_ms.get(dataset_id)
        self._per_point_ms[dataset_id] = (
            per_point
            if prev is None
            else self.alpha * per_point + (1.0 - self.alpha) * prev
        )

    def estimate_ms(self, dataset_id: str, n_points: int) -> Optional[float]:
        per_point = self._per_point_ms.get(dataset_id)
        if per_point is None:
            return None
        return per_point * n_points


def sampled_labels(
    points: np.ndarray,
    eps: float,
    minpts: int,
    fraction: float,
    *,
    hybrid: HybridDBSCAN,
) -> tuple[np.ndarray, int]:
    """Approximate clustering on an evenly spread ``fraction`` sample.

    Returns full-length labels — sampled points carry their subset
    clustering, unsampled points are NOISE — plus the sample size.
    Runs on ``hybrid``'s device (a fresh, fault-free one: the degraded
    path is the fallback of last resort and must not itself retry).
    """
    ids = sample_point_ids(len(points), fraction)
    sub = hybrid.fit(points[ids], eps, minpts)
    labels = np.full(len(points), NOISE, dtype=sub.labels.dtype)
    labels[ids] = sub.labels
    return labels, len(ids)
