"""LRU result cache — the paper's S3 reuse generalized to a service.

Section VII-F's scenario S3 computes one neighbor table ``T`` and lets
16 threads consume it for different ``minpts`` values.  A serving loop
generalizes exactly that: ``T`` depends only on ``(dataset epoch, ε)``,
so one cached table answers *any* minpts at that ε — the expensive GPU
phase is shared, only the cheap host clustering runs per variant.  A
second, smaller tier caches finished label vectors per
``(dataset epoch, ε, minpts)`` so exact repeats cost ~nothing.

Epoch keying doubles as invalidation: bumping a dataset's epoch makes
every live request miss the old entries (no stampede of explicit
deletes), while the old entries remain *addressable* as **stale** —
the degraded path may serve them, flagged, when a deadline cannot fit a
fresh build.  ``evict_older`` bounds how far back stale service may
reach; LRU eviction bounds residency.

Only **exact** results are ever inserted: degraded (sampled) answers
must not poison future exact hits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.neighbor_table import NeighborTable
from repro.index.grid import GridIndex

__all__ = ["CacheStats", "TableEntry", "ResultCache"]

#: table key: (dataset_id, epoch, eps)
_TKey = Tuple[str, int, float]
#: label key: (dataset_id, epoch, eps, minpts)
_LKey = Tuple[str, int, float, int]


@dataclass
class CacheStats:
    label_hits: int = 0
    table_hits: int = 0
    stale_hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.label_hits + self.table_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fresh-hit fraction of lookups (stale hits excluded)."""
        n = self.lookups
        return (self.label_hits + self.table_hits) / n if n else 0.0

    def as_dict(self) -> dict:
        return {
            "label_hits": self.label_hits,
            "table_hits": self.table_hits,
            "stale_hits": self.stale_hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
            "hit_rate": self.hit_rate,
        }


@dataclass
class TableEntry:
    """One cached neighbor-table build (exact, epoch-stamped)."""

    grid: GridIndex
    table: NeighborTable
    epoch: int
    eps: float
    #: modeled device ms of the build that produced it (cost estimator)
    build_device_ms: float = 0.0

    @property
    def nbytes(self) -> int:
        t = self.table
        return int(t.values.nbytes + t.t_min.nbytes + t.t_max.nbytes)


@dataclass
class ResultCache:
    """Two-tier LRU: neighbor tables above, label vectors below."""

    max_tables: int = 8
    max_label_sets: int = 64
    _tables: "OrderedDict[_TKey, TableEntry]" = field(default_factory=OrderedDict)
    _labels: "OrderedDict[_LKey, np.ndarray]" = field(default_factory=OrderedDict)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_tables < 1 or self.max_label_sets < 1:
            raise ValueError("cache capacities must be >= 1")

    # ------------------------------------------------------------------
    # fresh lookups (current epoch only)
    # ------------------------------------------------------------------
    def get_labels(
        self, dataset_id: str, epoch: int, eps: float, minpts: int
    ) -> Optional[np.ndarray]:
        key = (dataset_id, int(epoch), float(eps), int(minpts))
        hit = self._labels.get(key)
        if hit is None:
            return None
        self._labels.move_to_end(key)
        self.stats.label_hits += 1
        return hit.copy()

    def get_table(
        self, dataset_id: str, epoch: int, eps: float
    ) -> Optional[TableEntry]:
        key = (dataset_id, int(epoch), float(eps))
        hit = self._tables.get(key)
        if hit is None:
            return None
        self._tables.move_to_end(key)
        self.stats.table_hits += 1
        return hit

    def record_miss(self) -> None:
        self.stats.misses += 1

    # ------------------------------------------------------------------
    # stale lookups (older epochs; degraded serving only)
    # ------------------------------------------------------------------
    def stale_labels(
        self, dataset_id: str, current_epoch: int, eps: float, minpts: int
    ) -> Optional[tuple[int, np.ndarray]]:
        """Newest labels for ``(eps, minpts)`` from an epoch before
        ``current_epoch``, or None.  Does not count as a fresh hit."""
        best: Optional[_LKey] = None
        for key in self._labels:
            ds, epoch, e, m = key
            if (
                ds == dataset_id
                and epoch < current_epoch
                and e == float(eps)
                and m == int(minpts)
            ):
                if best is None or epoch > best[1]:
                    best = key
        if best is None:
            return None
        self._labels.move_to_end(best)
        self.stats.stale_hits += 1
        return best[1], self._labels[best].copy()

    def stale_table(
        self, dataset_id: str, current_epoch: int, eps: float
    ) -> Optional[TableEntry]:
        """Newest table for ``eps`` from an epoch before ``current_epoch``."""
        best: Optional[_TKey] = None
        for key in self._tables:
            ds, epoch, e = key
            if ds == dataset_id and epoch < current_epoch and e == float(eps):
                if best is None or epoch > best[1]:
                    best = key
        if best is None:
            return None
        self._tables.move_to_end(best)
        self.stats.stale_hits += 1
        return self._tables[best]

    def has_stale(
        self, dataset_id: str, current_epoch: int, eps: float, minpts: int
    ) -> bool:
        """Whether a stale answer (labels or table) exists — checked
        without touching LRU order or stats."""
        for ds, epoch, e, m in self._labels:
            if (
                ds == dataset_id
                and epoch < current_epoch
                and e == float(eps)
                and m == int(minpts)
            ):
                return True
        return any(
            ds == dataset_id and epoch < current_epoch and e == float(eps)
            for ds, epoch, e in self._tables
        )

    # ------------------------------------------------------------------
    # insertion / invalidation
    # ------------------------------------------------------------------
    def put_table(self, dataset_id: str, entry: TableEntry) -> None:
        key = (dataset_id, int(entry.epoch), float(entry.eps))
        self._tables[key] = entry
        self._tables.move_to_end(key)
        self.stats.insertions += 1
        while len(self._tables) > self.max_tables:
            self._tables.popitem(last=False)
            self.stats.evictions += 1

    def put_labels(
        self, dataset_id: str, epoch: int, eps: float, minpts: int,
        labels: np.ndarray,
    ) -> None:
        key = (dataset_id, int(epoch), float(eps), int(minpts))
        self._labels[key] = np.array(labels, copy=True)
        self._labels.move_to_end(key)
        self.stats.insertions += 1
        while len(self._labels) > self.max_label_sets:
            self._labels.popitem(last=False)
            self.stats.evictions += 1

    def evict_older(
        self, dataset_id: str, current_epoch: int, *, keep_epochs: int = 1
    ) -> int:
        """Drop the dataset's entries older than ``current_epoch -
        keep_epochs`` (called on epoch bump; the kept window is what
        stale degraded serving may still reach).  Returns drop count."""
        floor = int(current_epoch) - int(keep_epochs)
        t_dead = [
            k for k in self._tables if k[0] == dataset_id and k[1] < floor
        ]
        l_dead = [
            k for k in self._labels if k[0] == dataset_id and k[1] < floor
        ]
        for k in t_dead:
            del self._tables[k]
        for k in l_dead:
            del self._labels[k]
        self.stats.invalidated += len(t_dead) + len(l_dead)
        return len(t_dead) + len(l_dead)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_tables(self) -> int:
        return len(self._tables)

    @property
    def n_label_sets(self) -> int:
        return len(self._labels)

    @property
    def table_bytes(self) -> int:
        return sum(e.nbytes for e in self._tables.values())
