"""Abstract interpretation over device-kernel ASTs/CFGs.

This module implements the static-analysis foundation for KC005 (bounds
proofs) and the gather classification that sharpens KC003.  The domain is a
product of:

* **integer intervals** whose endpoints are symbolic linear expressions
  (:class:`Lin`) over parameter symbols, ``bdim``/``gdim`` launch symbols,
  and *fresh symbols* introduced for values loaded from arrays covered by a
  :class:`RowRange` contract (e.g. ``G_min[h] <= G_max[h] < len(A)``), and
* **tid-affine tracking**: every value carries an optional interval for its
  per-thread stride ``a`` in ``a * tid + b`` (``[0, 0]`` means uniform
  across the warp, ``None`` means not provably affine in ``tid``).

Loops are handled with a bounded fixpoint plus widening at the loop head
(back edge); small constant-tuple loops (the 3x3 neighbourhood sweeps) are
unrolled sequentially for precision.  Inequality guards refine *variable*
intervals only -- the global symbol-range table stays monotone, which keeps
the analysis path-insensitive where it must be sound.

Kernel authors declare trusted facts via :class:`KernelInvariants`
(returned from ``Kernel.value_invariants()``): buffer lengths, scalar
parameter ranges, element ranges, and lo/hi row pairings.  Arrays with no
declared length are *assumed* in-bounds (recorded, never a finding), so the
checker stays precise on foreign kernels while proving shipped ones.
"""

from __future__ import annotations

import ast
import itertools
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Sequence, Union

from repro.analysis.cfg import CFG

__all__ = [
    "Lin",
    "Interval",
    "AbsVal",
    "Prover",
    "RowRange",
    "KernelInvariants",
    "AccessRecord",
    "AbsintResult",
    "TripCount",
    "interpret_kernel",
    "parse_bound",
]

#: A monomial: a sorted tuple of symbol names (repeats encode powers).
Mono = tuple[str, ...]

#: A contract bound: int literal, expression string, or unbounded.
BoundSpec = Union[int, str, None]

_CTX_ATTRS = ("thread_idx", "block_idx", "block_dim", "grid_dim", "global_id")

_STATUS_ORDER = {"proved": 0, "assumed": 1, "unproved": 2}
_CLASS_ORDER = {
    "uniform": 0,
    "coalesced": 1,
    "strided": 2,
    "bounded-stride": 3,
    "gather-bounded": 4,
    "gather-unbounded": 5,
}


def _class_rank(c: str) -> int:
    base = c.split("(", 1)[0]
    return _CLASS_ORDER.get(base, 5)


# ---------------------------------------------------------------------------
# Symbolic linear expressions
# ---------------------------------------------------------------------------


class Lin:
    """An integer polynomial over named symbols (usually linear).

    Immutable by convention: arithmetic returns new instances.
    """

    __slots__ = ("terms", "const")

    def __init__(self, terms: Mapping[Mono, int] | None = None, const: int = 0) -> None:
        self.terms: dict[Mono, int] = {m: c for m, c in (terms or {}).items() if c}
        self.const: int = const

    @staticmethod
    def of(value: int) -> "Lin":
        return Lin({}, int(value))

    @staticmethod
    def sym(name: str) -> "Lin":
        return Lin({(name,): 1}, 0)

    def key(self) -> tuple[tuple[tuple[Mono, int], ...], int]:
        return (tuple(sorted(self.terms.items())), self.const)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Lin) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def is_const(self) -> bool:
        return not self.terms

    def symbols(self) -> set[str]:
        out: set[str] = set()
        for m in self.terms:
            out.update(m)
        return out

    def _coerce(self, other: "Lin | int") -> "Lin":
        return other if isinstance(other, Lin) else Lin.of(other)

    def __add__(self, other: "Lin | int") -> "Lin":
        o = self._coerce(other)
        terms = dict(self.terms)
        for m, c in o.terms.items():
            terms[m] = terms.get(m, 0) + c
        return Lin(terms, self.const + o.const)

    def __sub__(self, other: "Lin | int") -> "Lin":
        return self + (-self._coerce(other))

    def __neg__(self) -> "Lin":
        return Lin({m: -c for m, c in self.terms.items()}, -self.const)

    def mul(self, other: "Lin | int") -> "Lin":
        o = self._coerce(other)
        terms: dict[Mono, int] = {}
        const = self.const * o.const
        for m, c in self.terms.items():
            terms[m] = terms.get(m, 0) + c * o.const
        for m, c in o.terms.items():
            terms[m] = terms.get(m, 0) + c * self.const
        for (m1, c1), (m2, c2) in itertools.product(
            self.terms.items(), o.terms.items()
        ):
            m = tuple(sorted(m1 + m2))
            terms[m] = terms.get(m, 0) + c1 * c2
        return Lin(terms, const)

    def split(self, sym: str) -> "tuple[Lin, Lin] | None":
        """Decompose ``self == C * sym + R`` when ``sym`` has degree <= 1.

        Returns ``(C, R)``, or ``None`` if ``sym`` appears squared (or not
        at all, in which case substitution is useless anyway).
        """
        c_terms: dict[Mono, int] = {}
        c_const = 0
        r_terms: dict[Mono, int] = {}
        present = False
        for m, c in self.terms.items():
            count = m.count(sym)
            if count == 0:
                r_terms[m] = c
            elif count == 1:
                present = True
                rest = list(m)
                rest.remove(sym)
                if rest:
                    key = tuple(rest)
                    c_terms[key] = c_terms.get(key, 0) + c
                else:
                    c_const += c
            else:
                return None
        if not present:
            return None
        return Lin(c_terms, c_const), Lin(r_terms, self.const)

    def render(self) -> str:
        if not self.terms:
            return str(self.const)
        parts: list[str] = []
        for m, c in sorted(self.terms.items()):
            mono = "*".join(m)
            if c == 1:
                parts.append(mono)
            elif c == -1:
                parts.append(f"-{mono}")
            else:
                parts.append(f"{c}*{mono}")
        out = " + ".join(parts).replace("+ -", "- ")
        if self.const:
            out += f" + {self.const}" if self.const > 0 else f" - {-self.const}"
        return out

    def __repr__(self) -> str:
        return f"Lin({self.render()})"


# ---------------------------------------------------------------------------
# Prover over symbol ranges
# ---------------------------------------------------------------------------


class Prover:
    """Proves ``lin >= 0`` given a monotone table of symbol ranges.

    Strategy: constant check; all-terms-nonnegative check; otherwise pick a
    degree-1 symbol, determine the sign of its coefficient polynomial, and
    substitute the symbol's lower or upper range bound accordingly, then
    recurse with bounded depth.
    """

    def __init__(self, ranges: dict[str, "Interval"]) -> None:
        self.ranges = ranges
        self._memo: dict[tuple[object, int], bool] = {}

    def ge0(self, lin: Lin, depth: int = 6) -> bool:
        if lin.is_const():
            return lin.const >= 0
        key = (lin.key(), depth)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        self._memo[key] = False  # cycle guard
        result = self._ge0(lin, depth)
        self._memo[key] = result
        return result

    def _ge0(self, lin: Lin, depth: int) -> bool:
        if lin.const >= 0 and all(
            c > 0 and all(self._sym_ge0(s, depth - 1) for s in set(m))
            for m, c in lin.terms.items()
        ):
            return True
        if depth <= 0:
            return False
        for sym in sorted(lin.symbols()):
            sp = lin.split(sym)
            if sp is None:
                continue
            coeff, rest = sp
            rng = self.ranges.get(sym)
            if rng is None:
                continue
            if rng.lo is not None and self.ge0(coeff, depth - 1):
                if self.ge0(coeff.mul(rng.lo) + rest, depth - 1):
                    return True
            if rng.hi is not None and self.ge0(-coeff, depth - 1):
                if self.ge0(coeff.mul(rng.hi) + rest, depth - 1):
                    return True
        return False

    def _sym_ge0(self, sym: str, depth: int) -> bool:
        rng = self.ranges.get(sym)
        if rng is None or rng.lo is None:
            return False
        return self.ge0(rng.lo, max(depth, 0))

    def le(self, a: Lin, b: Lin) -> bool:
        """``a <= b``?"""
        return self.ge0(b - a)


# ---------------------------------------------------------------------------
# Intervals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """An integer interval with symbolic (or absent = infinite) endpoints."""

    lo: Optional[Lin] = None
    hi: Optional[Lin] = None

    @staticmethod
    def top() -> "Interval":
        return Interval(None, None)

    @staticmethod
    def const(value: int) -> "Interval":
        lin = Lin.of(value)
        return Interval(lin, lin)

    @staticmethod
    def exact(lin: Lin) -> "Interval":
        return Interval(lin, lin)

    def is_exact(self) -> Optional[Lin]:
        if self.lo is not None and self.hi is not None and self.lo == self.hi:
            return self.lo
        return None

    def is_const(self) -> Optional[int]:
        lin = self.is_exact()
        if lin is not None and lin.is_const():
            return lin.const
        return None

    def add(self, other: "Interval") -> "Interval":
        lo = self.lo + other.lo if self.lo is not None and other.lo is not None else None
        hi = self.hi + other.hi if self.hi is not None and other.hi is not None else None
        return Interval(lo, hi)

    def neg(self) -> "Interval":
        return Interval(
            -self.hi if self.hi is not None else None,
            -self.lo if self.lo is not None else None,
        )

    def sub(self, other: "Interval") -> "Interval":
        return self.add(other.neg())

    def shift(self, k: int) -> "Interval":
        return self.add(Interval.const(k))

    def mul(self, other: "Interval", pv: Prover) -> "Interval":
        for a, b in ((self, other), (other, self)):
            lin = a.is_exact()
            if lin is None:
                continue
            if lin.is_const() and lin.const < 0:
                return Interval(
                    b.hi.mul(lin) if b.hi is not None else None,
                    b.lo.mul(lin) if b.lo is not None else None,
                )
            if pv.ge0(lin):
                return Interval(
                    b.lo.mul(lin) if b.lo is not None else None,
                    b.hi.mul(lin) if b.hi is not None else None,
                )
            if pv.ge0(-lin):
                return Interval(
                    b.hi.mul(lin) if b.hi is not None else None,
                    b.lo.mul(lin) if b.lo is not None else None,
                )
        if (
            self.lo is not None
            and other.lo is not None
            and pv.ge0(self.lo)
            and pv.ge0(other.lo)
        ):
            hi = (
                self.hi.mul(other.hi)
                if self.hi is not None and other.hi is not None
                else None
            )
            return Interval(self.lo.mul(other.lo), hi)
        return Interval.top()

    def floordiv(self, other: "Interval", pv: Prover) -> "Interval":
        # x // y with x >= 0 and y >= 1 lands in [0, x.hi].
        if (
            other.lo is not None
            and pv.ge0(other.lo - 1)
            and self.lo is not None
            and pv.ge0(self.lo)
        ):
            return Interval(Lin.of(0), self.hi)
        return Interval.top()

    def mod(self, other: "Interval", pv: Prover) -> "Interval":
        # Python's % with y >= 1 is always in [0, y - 1], any x.
        if other.lo is not None and pv.ge0(other.lo - 1):
            hi = other.hi - 1 if other.hi is not None else None
            return Interval(Lin.of(0), hi)
        return Interval.top()

    def min_(self, other: "Interval", pv: Prover) -> "Interval":
        if self.lo is None or other.lo is None:
            lo = None
        elif pv.le(self.lo, other.lo):
            lo = self.lo
        elif pv.le(other.lo, self.lo):
            lo = other.lo
        else:
            lo = None
        # min(a, b) <= a and <= b: either hi is sound; prefer a provably
        # smaller one; for incomparable candidates keep the simpler Lin
        # (fewer symbolic terms), which is likelier to match a declared
        # length or block dimension downstream.
        if self.hi is not None and other.hi is not None:
            if pv.le(self.hi, other.hi):
                hi = self.hi
            elif pv.le(other.hi, self.hi):
                hi = other.hi
            else:
                hi = self.hi if len(self.hi.terms) <= len(other.hi.terms) else other.hi
        else:
            hi = self.hi if self.hi is not None else other.hi
        return Interval(lo, hi)

    def max_(self, other: "Interval", pv: Prover) -> "Interval":
        if self.lo is not None and other.lo is not None:
            if pv.le(other.lo, self.lo):
                lo = self.lo
            elif pv.le(self.lo, other.lo):
                lo = other.lo
            else:
                lo = self.lo if len(self.lo.terms) <= len(other.lo.terms) else other.lo
        else:
            lo = self.lo if self.lo is not None else other.lo
        if self.hi is None or other.hi is None:
            hi = None
        elif pv.le(other.hi, self.hi):
            hi = self.hi
        elif pv.le(self.hi, other.hi):
            hi = other.hi
        else:
            hi = None
        return Interval(lo, hi)

    def join(self, other: "Interval", pv: Prover) -> "Interval":
        if self.lo is None or other.lo is None:
            lo = None
        elif pv.le(self.lo, other.lo):
            lo = self.lo
        elif pv.le(other.lo, self.lo):
            lo = other.lo
        else:
            lo = None
        if self.hi is None or other.hi is None:
            hi = None
        elif pv.le(other.hi, self.hi):
            hi = self.hi
        elif pv.le(self.hi, other.hi):
            hi = other.hi
        else:
            hi = None
        return Interval(lo, hi)

    def meet(
        self, refine: "Interval", pv: Prover, prefer_refine: bool = True
    ) -> "Interval":
        """Intersect with a refinement.  Both bounds are sound, so when the
        prover can order them the tighter one wins; on *incomparable*
        bounds the refining side wins only when ``prefer_refine`` is set
        (used for the guarded operand of a comparison — the other operand
        keeps its established bound to avoid precision loss)."""
        if refine.lo is None:
            lo = self.lo
        elif self.lo is None:
            lo = refine.lo
        elif pv.ge0(refine.lo - self.lo):
            lo = refine.lo
        elif pv.ge0(self.lo - refine.lo):
            lo = self.lo
        else:
            lo = refine.lo if prefer_refine else self.lo
        if refine.hi is None:
            hi = self.hi
        elif self.hi is None:
            hi = refine.hi
        elif pv.ge0(self.hi - refine.hi):
            hi = refine.hi
        elif pv.ge0(refine.hi - self.hi):
            hi = self.hi
        else:
            hi = refine.hi if prefer_refine else self.hi
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        lo = self.lo if self.lo is not None and self.lo == newer.lo else None
        hi = self.hi if self.hi is not None and self.hi == newer.hi else None
        return Interval(lo, hi)

    def render(self) -> str:
        lo = self.lo.render() if self.lo is not None else "-inf"
        hi = self.hi.render() if self.hi is not None else "+inf"
        return f"[{lo}, {hi}]"


def _uniform() -> Interval:
    return Interval.const(0)


def _is_uniform(a: Optional[Interval]) -> bool:
    return a is not None and a.is_const() == 0


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AbsVal:
    """Product-domain value: interval x tid-stride x buffer aliasing."""

    rng: Interval = field(default_factory=Interval.top)
    a: Optional[Interval] = None  # per-thread stride; [0,0] = warp-uniform
    array: Optional[str] = None  # global buffer parameter this aliases
    shared: Optional[str] = None  # shared buffer this aliases
    pred: Optional[ast.expr] = None  # defining boolean expression, if any

    @staticmethod
    def top() -> "AbsVal":
        return AbsVal()

    @staticmethod
    def const(value: int) -> "AbsVal":
        return AbsVal(Interval.const(value), _uniform())

    def same(self, other: "AbsVal") -> bool:
        return (
            self.rng == other.rng
            and self.a == other.a
            and self.array == other.array
            and self.shared == other.shared
        )


def _join_val(x: AbsVal, y: AbsVal, pv: Prover) -> AbsVal:
    a: Optional[Interval]
    if x.a is not None and y.a is not None:
        a = x.a.join(y.a, pv)
    else:
        a = None
    return AbsVal(
        rng=x.rng.join(y.rng, pv),
        a=a,
        array=x.array if x.array == y.array else None,
        shared=x.shared if x.shared == y.shared else None,
    )


def _widen_val(old: AbsVal, new: AbsVal) -> AbsVal:
    a: Optional[Interval]
    if old.a is not None and new.a is not None:
        a = old.a.widen(new.a)
    else:
        a = None
    return AbsVal(
        rng=old.rng.widen(new.rng),
        a=a,
        array=old.array if old.array == new.array else None,
        shared=old.shared if old.shared == new.shared else None,
    )


# ---------------------------------------------------------------------------
# Contracts
# ---------------------------------------------------------------------------


@dataclass
class RowRange:
    """Declares ``lo_arr[i] <= hi_arr[i] < len(length_of)`` for all ``i``.

    With ``empty=True`` (the default) a row may be absent, encoded as
    ``lo_arr[i] == -1``; callers are expected to guard on ``lo >= 0``.
    """

    lo: str
    hi: str
    length_of: str
    empty: bool = True


@dataclass
class KernelInvariants:
    """Trusted per-kernel value contracts consumed by the interpreter.

    ``lengths`` maps buffer parameter names to length expressions over the
    scalar parameters (e.g. ``{"G_min": "nx*ny"}``).  ``scalars`` maps
    scalar parameter names to ``(lo, hi)`` bound expressions (``None`` for
    unbounded).  ``elements`` bounds the values stored in a buffer.
    ``rows`` declares lo/hi row pairings (see :class:`RowRange`).
    """

    lengths: Mapping[str, str] = field(default_factory=dict)
    scalars: Mapping[str, tuple[BoundSpec, BoundSpec]] = field(default_factory=dict)
    elements: Mapping[str, tuple[BoundSpec, BoundSpec]] = field(default_factory=dict)
    rows: tuple[RowRange, ...] = ()


class ContractError(ValueError):
    """A malformed bound expression in a kernel contract."""


def parse_bound(spec: BoundSpec) -> Optional[Lin]:
    """Parse a contract bound (int or expression string) into a :class:`Lin`.

    Supported grammar: names, integer literals, ``+``, ``-``, ``*``, unary
    minus, and ``len(name)``.
    """
    if spec is None:
        return None
    if isinstance(spec, int):
        return Lin.of(spec)
    try:
        tree = ast.parse(str(spec), mode="eval")
    except SyntaxError as exc:  # pragma: no cover - contract author error
        raise ContractError(f"unparsable bound {spec!r}") from exc

    def walk(node: ast.expr) -> Lin:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return Lin.of(node.value)
        if isinstance(node, ast.Name):
            return Lin.sym(node.id)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -walk(node.operand)
        if isinstance(node, ast.BinOp):
            left, right = walk(node.left), walk(node.right)
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left.mul(right)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "len"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Name)
        ):
            return Lin.sym(f"len({node.args[0].id})")
        raise ContractError(f"unsupported bound expression {spec!r}")

    return walk(tree.body)


# ---------------------------------------------------------------------------
# Access records and results
# ---------------------------------------------------------------------------


@dataclass
class AccessRecord:
    """One (buffer, line, direction) indexed access and its verdict."""

    buffer: str
    line: int
    write: bool
    shared: bool
    index: str
    status: str  # proved | assumed | unproved
    detail: str
    classification: str
    interval: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "buffer": self.buffer,
            "line": self.line,
            "write": self.write,
            "shared": self.shared,
            "index": self.index,
            "status": self.status,
            "detail": self.detail,
            "classification": self.classification,
            "interval": self.interval,
        }


@dataclass
class TripCount:
    """Widening-safe upper bound on one loop's iteration count.

    ``count`` is a :class:`Lin` over the contract symbols (params,
    ``bdim``/``gdim``, buffer lengths) bounding how many times the loop
    body runs *per execution of the loop statement*; ``None`` means the
    interpreter could not bound it (KC007 reports these).  Evaluators
    must clamp at zero — a sound upper bound may go negative for
    zero-trip bindings (``stop < start``).
    """

    line: int
    kind: str  # "range" | "unrolled" | "iterable" | "while"
    count: Optional[Lin]
    detail: str = ""

    @property
    def bounded(self) -> bool:
        return self.count is not None

    def render(self) -> str:
        bound = self.count.render() if self.count is not None else "unbounded"
        return f"L{self.line} {self.kind}: {bound}"


@dataclass
class AbsintResult:
    """Everything the interpreter learned about one device function."""

    accesses: list[AccessRecord]
    node_envs: dict[int, dict[str, str]]
    symbols: dict[str, str]
    #: CFG loop-head node id -> per-execution trip-count bound
    loop_trips: dict[int, TripCount] = field(default_factory=dict)
    #: raw final symbol ranges (contract + fresh row symbols) — lets
    #: downstream passes resolve fresh symbols out of the trip bounds
    ranges: dict[str, Interval] = field(default_factory=dict)

    def unproved(self) -> list[AccessRecord]:
        return [a for a in self.accesses if a.status == "unproved"]


# ---------------------------------------------------------------------------
# Control-flow bookkeeping
# ---------------------------------------------------------------------------

Env = dict[str, AbsVal]


@dataclass
class _Flow:
    env: Optional[Env]
    continues: list[Env] = field(default_factory=list)
    breaks: list[Env] = field(default_factory=list)


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


# ---------------------------------------------------------------------------
# The interpreter
# ---------------------------------------------------------------------------


class _Interp:
    MAX_PASSES = 6
    WIDEN_AT = 3
    MAX_UNROLL = 16

    def __init__(
        self,
        fn: ast.FunctionDef,
        invariants: Optional[KernelInvariants],
        cfg: Optional[CFG],
    ) -> None:
        self.fn = fn
        self.inv = invariants or KernelInvariants()
        argnames = [
            a.arg
            for a in (*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs)
        ]
        if "ctx" in argnames:
            self.ctx_name = "ctx"
        elif argnames and argnames[0] == "self" and len(argnames) > 1:
            self.ctx_name = argnames[1]
        elif argnames:
            self.ctx_name = argnames[0]
        else:
            self.ctx_name = "ctx"
        self.params = [a for a in argnames if a not in ("self", self.ctx_name)]
        self.ranges: dict[str, Interval] = {}
        self.pv = Prover(self.ranges)
        self.heap: dict[str, list[Interval]] = {}
        self.shared_dims: dict[str, list[Optional[Lin]]] = {}
        self.row_memo: dict[tuple[str, str], tuple[str, frozenset[str]]] = {}
        self.accesses: list[AccessRecord] = []
        self.node_envs: dict[int, dict[str, str]] = {}
        self.loop_trips: dict[int, TripCount] = {}
        self.recording = True
        self._sym_n = 0
        self._rows_by_lo = {r.lo: r for r in self.inv.rows}
        self._rows_by_hi = {r.hi: r for r in self.inv.rows}
        self._node_of: dict[int, int] = {}
        if cfg is not None:
            for node in cfg.nodes:
                if node.stmt is not None:
                    self._node_of[id(node.stmt)] = node.id

    # -- setup ------------------------------------------------------------

    def _length(self, array: str) -> Lin:
        spec = self.inv.lengths.get(array)
        if spec is not None:
            lin = parse_bound(spec)
            assert lin is not None
            return lin
        sym = f"len({array})"
        self.ranges.setdefault(sym, Interval(Lin.of(0), None))
        return Lin.sym(sym)

    def _init_env(self) -> Env:
        env: Env = {}
        self.ranges["bdim"] = Interval(Lin.of(1), None)
        self.ranges["gdim"] = Interval(Lin.of(1), None)
        bdim, gdim = Lin.sym("bdim"), Lin.sym("gdim")
        ctx = self.ctx_name
        env[f"{ctx}.thread_idx"] = AbsVal(
            Interval(Lin.of(0), bdim - 1), Interval.const(1)
        )
        env[f"{ctx}.block_idx"] = AbsVal(Interval(Lin.of(0), gdim - 1), _uniform())
        env[f"{ctx}.block_dim"] = AbsVal(Interval.exact(bdim), _uniform())
        env[f"{ctx}.grid_dim"] = AbsVal(Interval.exact(gdim), _uniform())
        env[f"{ctx}.global_id"] = AbsVal(
            Interval(Lin.of(0), gdim.mul(bdim) - 1), Interval.const(1)
        )
        for p in self.params:
            lo_s, hi_s = self.inv.scalars.get(p, (None, None))
            self.ranges[p] = Interval(parse_bound(lo_s), parse_bound(hi_s))
            env[p] = AbsVal(Interval.exact(Lin.sym(p)), _uniform(), array=p)
        # Contracts may bound free symbols that are not parameters (e.g.
        # ``n`` standing for ``len(D)``): register those ranges too.
        for sym_name, (lo_s, hi_s) in self.inv.scalars.items():
            if sym_name not in self.ranges:
                self.ranges[sym_name] = Interval(parse_bound(lo_s), parse_bound(hi_s))
        return env

    # -- entry ------------------------------------------------------------

    def run(self) -> AbsintResult:
        env = self._init_env()
        self._exec_block(self.fn.body, env)
        return AbsintResult(
            accesses=self._merged_accesses(),
            node_envs=self.node_envs,
            symbols={s: r.render() for s, r in sorted(self.ranges.items())},
            loop_trips=self.loop_trips,
            ranges=dict(self.ranges),
        )

    def _merged_accesses(self) -> list[AccessRecord]:
        merged: dict[tuple[str, int, bool], AccessRecord] = {}
        for rec in self.accesses:
            key = (rec.buffer, rec.line, rec.write)
            prev = merged.get(key)
            if prev is None:
                merged[key] = rec
                continue
            if _STATUS_ORDER[rec.status] > _STATUS_ORDER[prev.status]:
                prev.status, prev.detail = rec.status, rec.detail
                prev.interval = rec.interval
            if _class_rank(rec.classification) > _class_rank(prev.classification):
                prev.classification = rec.classification
        return sorted(merged.values(), key=lambda r: (r.line, r.buffer, r.write))

    # -- env utilities ----------------------------------------------------

    def _fresh(self, array: str, idx_text: str) -> str:
        self._sym_n += 1
        return f"s{self._sym_n}:{array}[{idx_text}]"

    def _purge(self, name: str, env: Env) -> None:
        dead = [k for k, (_, deps) in self.row_memo.items() if name in deps]
        for k in dead:
            del self.row_memo[k]
        for k, v in list(env.items()):
            if v.pred is not None and name in _names_in(v.pred):
                env[k] = replace(v, pred=None)

    def _join_env(self, a: Optional[Env], b: Optional[Env]) -> Optional[Env]:
        if a is None:
            return dict(b) if b is not None else None
        if b is None:
            return dict(a)
        out: Env = {}
        for k in set(a) | set(b):
            va, vb = a.get(k), b.get(k)
            if va is None or vb is None:
                out[k] = AbsVal.top()
            else:
                out[k] = _join_val(va, vb, self.pv)
        return out

    def _join_envs(self, envs: Sequence[Optional[Env]]) -> Optional[Env]:
        acc: Optional[Env] = None
        for e in envs:
            acc = self._join_env(acc, e)
        return acc

    def _widen_env(self, old: Env, new: Env) -> Env:
        out: Env = {}
        for k in set(old) | set(new):
            vo, vn = old.get(k), new.get(k)
            if vo is None or vn is None:
                out[k] = AbsVal.top()
            else:
                out[k] = _widen_val(vo, vn)
        return out

    def _env_eq(self, a: Env, b: Env) -> bool:
        if set(a) != set(b):
            return False
        return all(a[k].same(b[k]) for k in a)

    def _record_trip(
        self,
        st: ast.stmt,
        kind: str,
        count: Optional[Lin],
        detail: str = "",
    ) -> None:
        """Record a loop-head trip-count bound (outermost final walk
        only — fixpoint passes run with ``recording`` off, exactly like
        access recording)."""
        if not self.recording:
            return
        nid = self._node_of.get(id(st))
        if nid is None:
            return
        self.loop_trips[nid] = TripCount(
            line=st.lineno, kind=kind, count=count, detail=detail
        )

    def _record_node(self, stmt: ast.stmt, env: Env) -> None:
        if not self.recording:
            return
        nid = self._node_of.get(id(stmt))
        if nid is None:
            return
        self.node_envs[nid] = {
            k: v.rng.render()
            for k, v in sorted(env.items())
            if v.rng.lo is not None or v.rng.hi is not None
        }

    # -- expression evaluation --------------------------------------------

    def _eval(self, node: ast.expr, env: Env) -> AbsVal:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return AbsVal.const(int(node.value))
            if isinstance(node.value, int):
                return AbsVal.const(node.value)
            return AbsVal(Interval.top(), _uniform())
        if isinstance(node, ast.Name):
            return env.get(node.id, AbsVal.top())
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == self.ctx_name
                and node.attr in _CTX_ATTRS
            ):
                return env.get(f"{self.ctx_name}.{node.attr}", AbsVal.top())
            return AbsVal.top()
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            val = self._eval(node.operand, env)
            if isinstance(node.op, ast.USub):
                a = val.a.neg() if val.a is not None else None
                return AbsVal(val.rng.neg(), a)
            if isinstance(node.op, ast.UAdd):
                return val
            if isinstance(node.op, ast.Not):
                return AbsVal(Interval(Lin.of(0), Lin.of(1)), val.a)
            return AbsVal.top()
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Compare):
            vals = [self._eval(node.left, env)] + [
                self._eval(c, env) for c in node.comparators
            ]
            a = _uniform() if all(_is_uniform(v.a) for v in vals) else None
            return AbsVal(Interval(Lin.of(0), Lin.of(1)), a)
        if isinstance(node, ast.BoolOp):
            vals = [self._eval(v, env) for v in node.values]
            a = _uniform() if all(_is_uniform(v.a) for v in vals) else None
            return AbsVal(Interval(Lin.of(0), Lin.of(1)), a)
        if isinstance(node, ast.Subscript):
            return self._subscript(node, env, write=False, stored=None)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return _join_val(
                self._eval(node.body, env), self._eval(node.orelse, env), self.pv
            )
        if isinstance(node, (ast.Tuple, ast.List)):
            for e in node.elts:
                self._eval(e, env)
            return AbsVal.top()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self._eval(node.value, env)
            return AbsVal.top()
        return AbsVal.top()

    def _eval_binop(self, node: ast.BinOp, env: Env) -> AbsVal:
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        op = node.op
        both_uniform = _is_uniform(left.a) and _is_uniform(right.a)
        if isinstance(op, ast.Add):
            a = (
                left.a.add(right.a)
                if left.a is not None and right.a is not None
                else None
            )
            return AbsVal(left.rng.add(right.rng), a)
        if isinstance(op, ast.Sub):
            a = (
                left.a.sub(right.a)
                if left.a is not None and right.a is not None
                else None
            )
            return AbsVal(left.rng.sub(right.rng), a)
        if isinstance(op, ast.Mult):
            a: Optional[Interval]
            if _is_uniform(right.a) and left.a is not None:
                a = left.a.mul(right.rng, self.pv)
            elif _is_uniform(left.a) and right.a is not None:
                a = right.a.mul(left.rng, self.pv)
            else:
                a = None
            return AbsVal(left.rng.mul(right.rng, self.pv), a)
        if isinstance(op, ast.FloorDiv):
            return AbsVal(
                left.rng.floordiv(right.rng, self.pv),
                _uniform() if both_uniform else None,
            )
        if isinstance(op, ast.Mod):
            return AbsVal(
                left.rng.mod(right.rng, self.pv),
                _uniform() if both_uniform else None,
            )
        return AbsVal(Interval.top(), _uniform() if both_uniform else None)

    def _eval_call(self, node: ast.Call, env: Env) -> AbsVal:
        func = node.func
        # ctx.<method>(...)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == self.ctx_name
        ):
            if func.attr == "atomic_add" and len(node.args) >= 2:
                buf = self._eval(node.args[0], env)
                idx_node = node.args[1]
                idx = self._eval(idx_node, env)
                if len(node.args) > 2:
                    self._eval(node.args[2], env)
                self._check_access(buf, idx_node, idx, write=True, line=node.lineno)
                return AbsVal.top()
            for arg in node.args:
                self._eval(arg, env)
            return AbsVal.top()
        if isinstance(func, ast.Name):
            name = func.id
            args = [self._eval(a, env) for a in node.args]
            if name in ("int", "float", "bool") and len(args) == 1:
                return args[0]
            if name == "device_array" and len(args) == 1:
                return args[0]
            if name == "abs" and len(args) == 1:
                v = args[0]
                hi: Optional[Lin]
                if v.rng.lo is not None and v.rng.hi is not None:
                    neg_lo = -v.rng.lo
                    hi = neg_lo if self.pv.le(v.rng.hi, neg_lo) else v.rng.hi
                else:
                    hi = None
                return AbsVal(
                    Interval(Lin.of(0), hi), _uniform() if _is_uniform(v.a) else None
                )
            if name in ("min", "max") and len(args) >= 2:
                acc = args[0]
                for nxt in args[1:]:
                    rng = (
                        acc.rng.min_(nxt.rng, self.pv)
                        if name == "min"
                        else acc.rng.max_(nxt.rng, self.pv)
                    )
                    a = (
                        _uniform()
                        if _is_uniform(acc.a) and _is_uniform(nxt.a)
                        else None
                    )
                    acc = AbsVal(rng, a)
                return acc
            if name == "len" and len(args) == 1 and isinstance(node.args[0], ast.Name):
                target = node.args[0].id
                val = env.get(target)
                if val is not None and val.shared is not None:
                    dims = self.shared_dims.get(val.shared) or [None]
                    if dims and dims[0] is not None:
                        return AbsVal(Interval.exact(dims[0]), _uniform())
                    return AbsVal(Interval(Lin.of(0), None), _uniform())
                if val is not None and val.array is not None:
                    return AbsVal(
                        Interval.exact(self._length(val.array)), _uniform()
                    )
                return AbsVal(Interval(Lin.of(0), None), _uniform())
            return AbsVal.top()
        # Any other callable (math.sqrt, np.float64, ...)
        for arg in node.args:
            self._eval(arg, env)
        return AbsVal.top()

    # -- array accesses ----------------------------------------------------

    def _subscript(
        self,
        node: ast.Subscript,
        env: Env,
        *,
        write: bool,
        stored: Optional[AbsVal],
    ) -> AbsVal:
        base = self._eval(node.value, env)
        idx_node = node.slice
        if isinstance(idx_node, ast.Slice):
            return AbsVal.top()
        if isinstance(idx_node, ast.Tuple):
            idx_vals = [self._eval(e, env) for e in idx_node.elts]
            self._check_multi(base, idx_node, idx_vals, write=write, line=node.lineno)
            lead = idx_vals[0] if idx_vals else AbsVal.top()
            return self._loaded_value(base, idx_node, lead, env, write, stored)
        idx = self._eval(idx_node, env)
        self._check_access(base, idx_node, idx, write=write, line=node.lineno)
        return self._loaded_value(base, idx_node, idx, env, write, stored)

    def _loaded_value(
        self,
        base: AbsVal,
        idx_node: ast.expr,
        idx: AbsVal,
        env: Env,
        write: bool,
        stored: Optional[AbsVal],
    ) -> AbsVal:
        if base.shared is not None:
            if write:
                if stored is not None:
                    self._heap_store(base.shared, stored.rng)
                return AbsVal.top()
            rng = self._heap_read(base.shared)
            return AbsVal(rng, _uniform() if _is_uniform(idx.a) else None)
        if base.array is not None and not write:
            return self._load_from_array(base.array, idx_node, idx)
        return AbsVal.top()

    def _load_from_array(
        self, array: str, idx_node: ast.expr, idx: AbsVal
    ) -> AbsVal:
        uniform = _is_uniform(idx.a)
        a = _uniform() if uniform else None
        idx_text = ast.unparse(idx_node)
        row = self._rows_by_lo.get(array)
        if row is not None:
            key = (array, idx_text)
            hit = self.row_memo.get(key)
            if hit is not None:
                return AbsVal(Interval.exact(Lin.sym(hit[0])), a)
            sym = self._fresh(array, idx_text)
            length = self._length(row.length_of)
            lo = Lin.of(-1 if row.empty else 0)
            self.ranges[sym] = Interval(lo, length - 1)
            self.row_memo[key] = (sym, frozenset(_names_in(idx_node)))
            return AbsVal(Interval.exact(Lin.sym(sym)), a)
        row = self._rows_by_hi.get(array)
        if row is not None:
            key = (array, idx_text)
            hit = self.row_memo.get(key)
            if hit is not None:
                return AbsVal(Interval.exact(Lin.sym(hit[0])), a)
            length = self._length(row.length_of)
            lo_hit = self.row_memo.get((row.lo, idx_text))
            lo = (
                Lin.sym(lo_hit[0])
                if lo_hit is not None
                else Lin.of(-1 if row.empty else 0)
            )
            sym = self._fresh(array, idx_text)
            self.ranges[sym] = Interval(lo, length - 1)
            self.row_memo[key] = (sym, frozenset(_names_in(idx_node)))
            return AbsVal(Interval.exact(Lin.sym(sym)), a)
        el = self.inv.elements.get(array)
        if el is not None:
            return AbsVal(Interval(parse_bound(el[0]), parse_bound(el[1])), a)
        return AbsVal(Interval.top(), a)

    def _classify(self, idx: AbsVal) -> str:
        if idx.a is not None:
            k = idx.a.is_const()
            if k == 0:
                return "uniform"
            if k in (1, -1):
                return "coalesced"
            if k is not None:
                return f"strided({k})"
            if idx.a.is_exact() is not None or (
                idx.a.lo is not None and idx.a.hi is not None
            ):
                return "bounded-stride"
        if idx.rng.lo is not None and idx.rng.hi is not None:
            return "gather-bounded"
        return "gather-unbounded"

    def _check_access(
        self,
        base: AbsVal,
        idx_node: ast.expr,
        idx: AbsVal,
        *,
        write: bool,
        line: int,
    ) -> None:
        if base.shared is not None:
            dims = self.shared_dims.get(base.shared) or [None]
            self._record(
                base.shared, True, write, line, idx_node, idx, dims[0]
            )
        elif base.array is not None:
            bound = (
                parse_bound(self.inv.lengths[base.array])
                if base.array in self.inv.lengths
                else None
            )
            self._record(base.array, False, write, line, idx_node, idx, bound)

    def _check_multi(
        self,
        base: AbsVal,
        idx_tuple: ast.Tuple,
        idx_vals: list[AbsVal],
        *,
        write: bool,
        line: int,
    ) -> None:
        if base.shared is not None:
            dims = self.shared_dims.get(base.shared) or []
            for d, (node, val) in enumerate(zip(idx_tuple.elts, idx_vals)):
                bound = dims[d] if d < len(dims) else None
                self._record(base.shared, True, write, line, node, val, bound, dim=d)
        elif base.array is not None:
            bound = (
                parse_bound(self.inv.lengths[base.array])
                if base.array in self.inv.lengths
                else None
            )
            if idx_vals:
                self._record(
                    base.array, False, write, line, idx_tuple.elts[0], idx_vals[0], bound
                )

    def _record(
        self,
        buffer: str,
        shared: bool,
        write: bool,
        line: int,
        idx_node: ast.expr,
        idx: AbsVal,
        bound: Optional[Lin],
        dim: int = 0,
    ) -> None:
        if not self.recording:
            return
        classification = self._classify(idx)
        if not shared and bound is None:
            status, detail = "assumed", "no length contract for buffer"
        else:
            lo_ok = idx.rng.lo is not None and self.pv.ge0(idx.rng.lo)
            hi_ok = (
                bound is not None
                and idx.rng.hi is not None
                and self.pv.ge0(bound - 1 - idx.rng.hi)
            )
            if lo_ok and hi_ok:
                status, detail = "proved", "in bounds"
            else:
                fails = []
                if not lo_ok:
                    fails.append("lower bound (index may be < 0)")
                if not hi_ok:
                    if bound is None:
                        fails.append("upper bound (extent not static)")
                    else:
                        fails.append(f"upper bound (vs {bound.render()})")
                status, detail = "unproved", "; ".join(fails)
        self.accesses.append(
            AccessRecord(
                buffer=buffer,
                line=line,
                write=write,
                shared=shared,
                index=ast.unparse(idx_node),
                status=status,
                detail=detail if dim == 0 else f"dim {dim}: {detail}",
                classification=classification,
                interval=idx.rng.render(),
            )
        )

    # -- refinement --------------------------------------------------------

    def _assume(self, test: ast.expr, truth: bool, env: Env, depth: int = 4) -> bool:
        """Refine ``env`` under ``test == truth``; False means infeasible."""
        if depth <= 0:
            return True
        if isinstance(test, ast.Constant):
            return bool(test.value) == truth
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._assume(test.operand, not truth, env, depth)
        if isinstance(test, ast.BoolOp):
            conjunctive = (isinstance(test.op, ast.And) and truth) or (
                isinstance(test.op, ast.Or) and not truth
            )
            if conjunctive:
                return all(self._assume(v, truth, env, depth) for v in test.values)
            return True
        if isinstance(test, ast.Compare):
            if len(test.ops) == 1:
                return self._assume_cmp(
                    test.left, test.ops[0], test.comparators[0], truth, env
                )
            if len(test.ops) == 2 and truth:
                ok1 = self._assume_cmp(
                    test.left, test.ops[0], test.comparators[0], True, env
                )
                ok2 = self._assume_cmp(
                    test.comparators[0], test.ops[1], test.comparators[1], True, env
                )
                return ok1 and ok2
            return True
        if isinstance(test, ast.Name):
            val = env.get(test.id)
            if val is not None and val.pred is not None:
                return self._assume(val.pred, truth, env, depth - 1)
            return True
        return True

    def _assume_cmp(
        self,
        left: ast.expr,
        op: ast.cmpop,
        right: ast.expr,
        truth: bool,
        env: Env,
    ) -> bool:
        if not truth:
            flipped = {
                ast.Lt: ast.GtE,
                ast.LtE: ast.Gt,
                ast.Gt: ast.LtE,
                ast.GtE: ast.Lt,
                ast.NotEq: ast.Eq,
            }.get(type(op))
            if flipped is None:
                return True
            op = flipped()
        if isinstance(op, (ast.Is, ast.IsNot, ast.In, ast.NotIn, ast.NotEq)):
            return True
        rec = self.recording
        self.recording = False
        try:
            lv = self._eval(left, env)
            rv = self._eval(right, env)
        finally:
            self.recording = rec

        def key_of(node: ast.expr) -> Optional[str]:
            if isinstance(node, ast.Name):
                return node.id
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == self.ctx_name
                and node.attr in _CTX_ATTRS
            ):
                return f"{self.ctx_name}.{node.attr}"
            return None

        def refine(node: ast.expr, by: Interval, prefer: bool = True) -> None:
            key = key_of(node)
            if key is None or key not in env:
                return
            val = env[key]
            env[key] = replace(val, rng=val.rng.meet(by, self.pv, prefer))

        llo, lhi = lv.rng.lo, lv.rng.hi
        rlo, rhi = rv.rng.lo, rv.rng.hi
        if isinstance(op, ast.Lt):
            refine(left, Interval(None, rhi - 1 if rhi is not None else None))
            refine(right, Interval(llo + 1 if llo is not None else None, None), False)
        elif isinstance(op, ast.LtE):
            refine(left, Interval(None, rhi))
            refine(right, Interval(llo, None), False)
        elif isinstance(op, ast.Gt):
            refine(left, Interval(rlo + 1 if rlo is not None else None, None))
            refine(right, Interval(None, lhi - 1 if lhi is not None else None), False)
        elif isinstance(op, ast.GtE):
            refine(left, Interval(rlo, None))
            refine(right, Interval(None, lhi), False)
        elif isinstance(op, ast.Eq):
            refine(left, rv.rng)
            refine(right, lv.rng, False)
        return True

    # -- statements --------------------------------------------------------

    def _exec_block(self, stmts: Sequence[ast.stmt], env: Optional[Env]) -> _Flow:
        continues: list[Env] = []
        breaks: list[Env] = []
        cur = env
        for st in stmts:
            if cur is None:
                break
            fl = self._exec_stmt(st, cur)
            continues.extend(fl.continues)
            breaks.extend(fl.breaks)
            cur = fl.env
        return _Flow(cur, continues, breaks)

    def _exec_stmt(self, st: ast.stmt, env: Env) -> _Flow:
        self._record_node(st, env)
        if isinstance(st, ast.Assign):
            return self._exec_assign(st, env)
        if isinstance(st, ast.AnnAssign):
            if st.value is not None and isinstance(st.target, ast.Name):
                val = self._eval(st.value, env)
                self._bind_name(st.target.id, val, st.value, env)
            return _Flow(env)
        if isinstance(st, ast.AugAssign):
            return self._exec_augassign(st, env)
        if isinstance(st, ast.Expr):
            self._eval(st.value, env)
            return _Flow(env)
        if isinstance(st, ast.If):
            return self._exec_if(st, env)
        if isinstance(st, ast.For):
            return self._exec_for(st, env)
        if isinstance(st, ast.While):
            return self._exec_while(st, env)
        if isinstance(st, ast.Return):
            if st.value is not None:
                self._eval(st.value, env)
            return _Flow(None)
        if isinstance(st, ast.Continue):
            return _Flow(None, continues=[dict(env)])
        if isinstance(st, ast.Break):
            return _Flow(None, breaks=[dict(env)])
        if isinstance(st, (ast.Pass, ast.Global, ast.Nonlocal, ast.Import,
                           ast.ImportFrom, ast.Assert, ast.FunctionDef)):
            return _Flow(env)
        if isinstance(st, ast.With):
            return self._exec_block(st.body, env)
        if isinstance(st, ast.Try):
            fl = self._exec_block(st.body, env)
            return _Flow(
                self._join_env(fl.env, env), fl.continues, fl.breaks
            )
        return _Flow(env)

    def _shared_call(self, value: ast.expr) -> Optional[ast.Call]:
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and isinstance(value.func.value, ast.Name)
            and value.func.value.id == self.ctx_name
            and value.func.attr == "shared"
        ):
            return value
        return None

    def _exec_assign(self, st: ast.Assign, env: Env) -> _Flow:
        shared_call = self._shared_call(st.value)
        if shared_call is not None and len(st.targets) == 1 and isinstance(
            st.targets[0], ast.Name
        ):
            var = st.targets[0].id
            dims: list[Optional[Lin]] = []
            if len(shared_call.args) >= 2:
                shape = shared_call.args[1]
                elts = shape.elts if isinstance(shape, ast.Tuple) else [shape]
                for e in elts:
                    dims.append(self._eval(e, env).rng.is_exact())
            self._purge(var, env)
            env[var] = AbsVal(Interval.top(), None, shared=var)
            self.shared_dims[var] = dims or [None]
            self.heap.setdefault(var, [Interval(Lin.of(0), Lin.of(0))])
            return _Flow(env)
        # tuple-to-tuple: evaluate pairwise for precision
        if (
            len(st.targets) == 1
            and isinstance(st.targets[0], ast.Tuple)
            and isinstance(st.value, ast.Tuple)
            and len(st.targets[0].elts) == len(st.value.elts)
        ):
            pairs = [
                (t, self._eval(v, env), v)
                for t, v in zip(st.targets[0].elts, st.value.elts)
            ]
            for t, val, vnode in pairs:
                self._assign_target(t, val, vnode, env)
            return _Flow(env)
        val = self._eval(st.value, env)
        for target in st.targets:
            self._assign_target(target, val, st.value, env)
        return _Flow(env)

    def _assign_target(
        self, target: ast.expr, val: AbsVal, value_node: ast.expr, env: Env
    ) -> None:
        if isinstance(target, ast.Name):
            self._bind_name(target.id, val, value_node, env)
        elif isinstance(target, ast.Tuple):
            for t in target.elts:
                self._assign_target(t, AbsVal.top(), value_node, env)
        elif isinstance(target, ast.Subscript):
            self._subscript(target, env, write=True, stored=val)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, AbsVal.top(), value_node, env)

    def _bind_name(
        self, name: str, val: AbsVal, value_node: ast.expr, env: Env
    ) -> None:
        self._purge(name, env)
        pred = value_node if isinstance(value_node, (ast.Compare, ast.BoolOp)) else None
        env[name] = replace(val, pred=pred)

    def _exec_augassign(self, st: ast.AugAssign, env: Env) -> _Flow:
        synth = ast.BinOp(left=st.target, op=st.op, right=st.value)
        ast.copy_location(synth, st)
        ast.fix_missing_locations(synth)
        if isinstance(st.target, ast.Name):
            # target read does not touch arrays; evaluate combined value
            val = self._eval_binop(synth, env)
            self._bind_name(st.target.id, val, st.value, env)
        elif isinstance(st.target, ast.Subscript):
            self._subscript(st.target, env, write=False, stored=None)
            val = AbsVal.top()
            self._subscript(st.target, env, write=True, stored=val)
        return _Flow(env)

    def _exec_if(self, st: ast.If, env: Env) -> _Flow:
        self._eval(st.test, env)  # record accesses in the test once
        env_t: Optional[Env] = dict(env)
        env_f: Optional[Env] = dict(env)
        assert env_t is not None and env_f is not None
        if not self._assume(st.test, True, env_t):
            env_t = None
        if not self._assume(st.test, False, env_f):
            env_f = None
        fl_t = self._exec_block(st.body, env_t) if env_t is not None else _Flow(None)
        fl_f = (
            self._exec_block(st.orelse, env_f) if env_f is not None else _Flow(None)
        )
        return _Flow(
            self._join_env(fl_t.env, fl_f.env),
            fl_t.continues + fl_f.continues,
            fl_t.breaks + fl_f.breaks,
        )

    # -- loops -------------------------------------------------------------

    MAX_HEAP_CANDS = 12

    def _heap_key(self) -> tuple[tuple[str, tuple[Interval, ...]], ...]:
        return tuple(sorted((k, tuple(v)) for k, v in self.heap.items()))

    def _heap_store(self, name: str, rng: Interval) -> None:
        cands = self.heap.setdefault(name, [Interval(Lin.of(0), Lin.of(0))])
        if rng in cands:
            return
        cands.append(rng)
        if len(cands) > self.MAX_HEAP_CANDS:
            # Collapse to one summary interval to bound fixpoint state.
            acc = cands[0]
            for c in cands[1:]:
                acc = acc.join(c, self.pv)
            self.heap[name] = [acc]

    def _heap_read(self, name: str) -> Interval:
        # Element summary of a shared buffer: the join of the initial
        # np.zeros contents and every stored interval.  Computed as an
        # n-way join over all candidates so a single incomparable pair
        # (e.g. [0,0] vs [0, nx*ny-2]) cannot poison a bound that a
        # later candidate (nx*ny-1) provably dominates.
        cands = self.heap.get(name)
        if not cands:
            return Interval(Lin.of(0), Lin.of(0))
        los = [c.lo for c in cands]
        his = [c.hi for c in cands]
        lo: Optional[Lin] = None
        if all(x is not None for x in los):
            for cand in los:
                assert cand is not None
                if all(o is not None and self.pv.le(cand, o) for o in los):
                    lo = cand
                    break
        hi: Optional[Lin] = None
        if all(x is not None for x in his):
            for cand in his:
                assert cand is not None
                if all(o is not None and self.pv.le(o, cand) for o in his):
                    hi = cand
                    break
        return Interval(lo, hi)

    def _exec_for(self, st: ast.For, env: Env) -> _Flow:
        it = st.iter
        if (
            isinstance(it, (ast.Tuple, ast.List))
            and len(it.elts) <= self.MAX_UNROLL
            and self._literal_elts(it) is not None
        ):
            return self._exec_unrolled(st, env)
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
        ):
            return self._exec_range(st, env)
        # Unknown iterable: bind target to top and run a fixpoint.
        self._eval(it, env)
        self._record_trip(st, "iterable", None, "iterable length unknown")
        return self._loop_fixpoint(
            st, env, target_val=AbsVal.top(), zero_trip=dict(env)
        )

    def _literal_elts(
        self, it: "ast.Tuple | ast.List"
    ) -> Optional[list[Union[int, float]]]:
        out: list[Union[int, float]] = []
        for e in it.elts:
            try:
                v = ast.literal_eval(e)
            except (ValueError, TypeError, SyntaxError):
                return None
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                return None
            out.append(v)
        return out

    def _exec_unrolled(self, st: ast.For, env: Env) -> _Flow:
        assert isinstance(st.iter, (ast.Tuple, ast.List))
        values = self._literal_elts(st.iter)
        assert values is not None
        self._record_trip(st, "unrolled", Lin.of(len(values)))
        breaks: list[Env] = []
        cur: Optional[Env] = env
        for e, v in zip(st.iter.elts, values):
            if cur is None:
                break
            cur = dict(cur)
            if isinstance(st.target, ast.Name):
                value = (
                    AbsVal.const(v)
                    if isinstance(v, int)
                    else AbsVal(Interval.top(), _uniform())
                )
                self._bind_name(st.target.id, value, e, cur)
            fl = self._exec_block(st.body, cur)
            breaks.extend(fl.breaks)
            cur = self._join_envs([fl.env, *fl.continues])
        exit_env = self._join_envs([cur, *breaks])
        if st.orelse and exit_env is not None:
            fl = self._exec_block(st.orelse, exit_env)
            exit_env = fl.env
        return _Flow(exit_env)

    def _exec_range(self, st: ast.For, env: Env) -> _Flow:
        assert isinstance(st.iter, ast.Call)
        args = [self._eval(a, env) for a in st.iter.args]
        if len(args) == 1:
            start: AbsVal = AbsVal.const(0)
            stop, step = args[0], AbsVal.const(1)
        elif len(args) == 2:
            start, stop = args
            step = AbsVal.const(1)
        elif len(args) >= 3:
            start, stop, step = args[:3]
        else:
            start = stop = step = AbsVal.top()
        positive = step.rng.lo is not None and self.pv.ge0(step.rng.lo - 1)
        if positive:
            t_rng = Interval(
                start.rng.lo,
                stop.rng.hi - 1 if stop.rng.hi is not None else None,
            )
        else:
            t_rng = Interval.top()
        # Trip-count bound: for step >= 1, iterations <= stop.hi -
        # start.lo (sound for any larger step too; constant-step
        # division is left to the cost contracts).
        if positive and stop.rng.hi is not None and start.rng.lo is not None:
            self._record_trip(st, "range", stop.rng.hi - start.rng.lo)
        else:
            why = (
                "step not provably positive"
                if not positive
                else "range endpoint unbounded"
            )
            self._record_trip(st, "range", None, why)
        t_a = (
            _uniform()
            if _is_uniform(start.a) and _is_uniform(stop.a) and _is_uniform(step.a)
            else None
        )
        return self._loop_fixpoint(
            st, env, target_val=AbsVal(t_rng, t_a), zero_trip=dict(env)
        )

    def _loop_fixpoint(
        self,
        st: ast.For,
        env: Env,
        *,
        target_val: AbsVal,
        zero_trip: Env,
    ) -> _Flow:
        head: Env = dict(env)
        rec = self.recording
        self.recording = False
        try:
            for i in range(self.MAX_PASSES):
                benv = dict(head)
                self._bind_loop_target(st.target, target_val, benv)
                heap_before = self._heap_key()
                fl = self._exec_block(st.body, benv)
                back = self._join_envs([fl.env, *fl.continues])
                new_head = self._join_env(head, back) if back is not None else head
                assert new_head is not None
                if i + 1 >= self.WIDEN_AT:
                    new_head = self._widen_env(head, new_head)
                if self._env_eq(new_head, head) and self._heap_key() == heap_before:
                    head = new_head
                    break
                head = new_head
        finally:
            self.recording = rec
        benv = dict(head)
        self._bind_loop_target(st.target, target_val, benv)
        fl = self._exec_block(st.body, benv)
        final_back = self._join_envs([fl.env, *fl.continues])
        exit_env = self._join_envs([head, final_back, *fl.breaks])
        if st.orelse and exit_env is not None:
            ofl = self._exec_block(st.orelse, exit_env)
            exit_env = ofl.env
        return _Flow(exit_env)

    def _bind_loop_target(
        self, target: ast.expr, val: AbsVal, env: Env
    ) -> None:
        if isinstance(target, ast.Name):
            self._purge(target.id, env)
            env[target.id] = val
        elif isinstance(target, ast.Tuple):
            for t in target.elts:
                self._bind_loop_target(t, AbsVal.top(), env)

    def _exec_while(self, st: ast.While, env: Env) -> _Flow:
        self._record_trip(st, "while", None, "while loops are not counted")
        head: Env = dict(env)
        breaks: list[Env] = []
        rec = self.recording
        self.recording = False
        try:
            for i in range(self.MAX_PASSES):
                benv: Optional[Env] = dict(head)
                assert benv is not None
                if not self._assume(st.test, True, benv):
                    benv = None
                heap_before = self._heap_key()
                fl = (
                    self._exec_block(st.body, benv)
                    if benv is not None
                    else _Flow(None)
                )
                back = self._join_envs([fl.env, *fl.continues])
                new_head = self._join_env(head, back) if back is not None else head
                assert new_head is not None
                if i + 1 >= self.WIDEN_AT:
                    new_head = self._widen_env(head, new_head)
                if self._env_eq(new_head, head) and self._heap_key() == heap_before:
                    head = new_head
                    break
                head = new_head
        finally:
            self.recording = rec
        self._eval(st.test, head)  # record accesses in the test
        benv2: Optional[Env] = dict(head)
        assert benv2 is not None
        if not self._assume(st.test, True, benv2):
            benv2 = None
        fl = self._exec_block(st.body, benv2) if benv2 is not None else _Flow(None)
        breaks.extend(fl.breaks)
        exit_env: Optional[Env] = dict(head)
        assert exit_env is not None
        if not self._assume(st.test, False, exit_env):
            exit_env = None
        exit_env = self._join_envs([exit_env, *breaks])
        if st.orelse and exit_env is not None:
            ofl = self._exec_block(st.orelse, exit_env)
            exit_env = ofl.env
        return _Flow(exit_env)


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------


def interpret_kernel(
    fn: ast.FunctionDef,
    invariants: Optional[KernelInvariants] = None,
    cfg: Optional[CFG] = None,
) -> AbsintResult:
    """Abstractly interpret one ``device_code`` function definition.

    ``invariants`` carries the kernel's trusted value contracts (buffer
    lengths, scalar ranges, element ranges, row pairings); ``cfg`` — when
    provided — lets the interpreter record the abstract environment at
    each statement-level CFG node (``AbsintResult.node_envs``).
    """
    return _Interp(fn, invariants, cfg).run()
