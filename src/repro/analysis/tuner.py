"""Cost-guided launch-configuration pruning (the static autotuner).

Consumes the KC007 symbolic cost models (:mod:`repro.analysis.costmodel`)
to rank the kernel × block-dim configuration lattice for a concrete
workload *before any launch*: each candidate's predicted milliseconds
comes from evaluating the kernel's cost polynomial at the workload's
binding with the same arithmetic the simulator charges.  Configurations
whose *optimistic* prediction (prediction ÷ safety) still exceeds the
best candidate's *pessimistic* prediction (prediction × safety) are
dominated and eliminated; the survivors' top-k is the frontier a
measured search would explore.  The safety factor absorbs the model's
calibration error, so the measured-fastest configuration is never
pruned as long as the model is within ``safety``× of the truth in both
directions (CI asserts this on the committed bench shapes).

The same machinery drives
:meth:`repro.kernels.HybridSelectKernel.with_static_hint`: the
threshold-tie direction is decided by comparing the shared and global
paths' predicted cost per block size instead of occupancy alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.analysis.costmodel import KernelCostModel, derive_cost
from repro.gpusim.device import DeviceSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.index.grid import GridIndex

__all__ = [
    "WorkloadStats",
    "TunerConfig",
    "RankedConfig",
    "PruneResult",
    "prune_configs",
    "predicted_ms",
    "cost_tie_break_hint",
    "DEFAULT_KERNELS",
    "DEFAULT_TUNE_BLOCK_DIMS",
]

DEFAULT_KERNELS: tuple[str, ...] = ("global", "shared", "hybrid")
DEFAULT_TUNE_BLOCK_DIMS: tuple[int, ...] = (64, 128, 256, 512)


@dataclass(frozen=True)
class WorkloadStats:
    """The workload statistics the cost bindings consume."""

    #: points in the grid
    n: int
    nx: int
    ny: int
    #: non-empty grid cells
    n_cells: int
    #: mean points per non-empty cell (the ``r_cell`` contract symbol)
    r_cell: float
    #: fraction of points living in dense (shared-path) cells
    dense_frac: float = 0.5

    @classmethod
    def from_grid(
        cls,
        grid: "GridIndex",
        *,
        dense_threshold: Optional[int] = None,
        block_dim: int = 256,
    ) -> "WorkloadStats":
        """Measure the statistics from a built :class:`GridIndex`."""
        from repro.kernels.hybrid_select import partition_cells

        n = len(grid)
        cells = grid.nonempty_cells
        n_cells = max(1, len(cells))
        thr = dense_threshold or max(1, block_dim // 4)
        dense, _ = partition_cells(grid, thr)
        dense_pts = int(
            (grid.cell_max[dense] - grid.cell_min[dense] + 1).sum()
        )
        return cls(
            n=n,
            nx=grid.nx,
            ny=grid.ny,
            n_cells=n_cells,
            r_cell=n / n_cells,
            dense_frac=dense_pts / max(1, n),
        )

    def binding(self) -> dict[str, float]:
        """The launch-geometry-free part of a cost binding."""
        return {
            "n": float(self.n),
            "nx": float(self.nx),
            "ny": float(self.ny),
            "r_cell": float(self.r_cell),
            "n_batches": 1.0,
            "batch": 0.0,
        }

    def to_dict(self) -> dict[str, object]:
        return {
            "n": self.n,
            "nx": self.nx,
            "ny": self.ny,
            "n_cells": self.n_cells,
            "r_cell": round(self.r_cell, 6),
            "dense_frac": round(self.dense_frac, 6),
        }


#: a nominal threshold-marginal workload for data-free tie-breaking:
#: mid-size grid, cells holding a quarter-block of points each
NOMINAL_STATS = WorkloadStats(
    n=4096, nx=24, ny=24, n_cells=512, r_cell=8.0, dense_frac=0.5
)


@dataclass(frozen=True)
class TunerConfig:
    """One point of the configuration lattice."""

    kernel: str  #: "global" | "shared" | "hybrid"
    block_dim: int

    @property
    def label(self) -> str:
        return f"{self.kernel}@{self.block_dim}"


@dataclass(frozen=True)
class RankedConfig:
    """One configuration's predicted cost and pruning verdict."""

    config: TunerConfig
    predicted_ms: float
    feasible: bool
    eliminated: bool
    reason: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "kernel": self.config.kernel,
            "block_dim": self.config.block_dim,
            "predicted_ms": (
                round(self.predicted_ms, 9)
                if math.isfinite(self.predicted_ms)
                else None
            ),
            "feasible": self.feasible,
            "eliminated": self.eliminated,
            "reason": self.reason,
        }


@dataclass
class PruneResult:
    """Ranked lattice, surviving frontier, and the dominated set."""

    stats: WorkloadStats
    safety: float
    ranked: list[RankedConfig] = field(default_factory=list)
    #: cap on the frontier size (None = every survivor); the best
    #: configuration is always ranked first, so it is always included
    top_k: Optional[int] = None

    @property
    def frontier(self) -> list[RankedConfig]:
        survivors = [r for r in self.ranked if not r.eliminated]
        if self.top_k is not None:
            return survivors[: max(1, self.top_k)]
        return survivors

    @property
    def eliminated(self) -> list[RankedConfig]:
        return [r for r in self.ranked if r.eliminated]

    @property
    def best(self) -> Optional[RankedConfig]:
        return self.frontier[0] if self.frontier else None

    def to_dict(self) -> dict[str, object]:
        return {
            "stats": self.stats.to_dict(),
            "safety": self.safety,
            "top_k": self.top_k,
            "ranked": [r.to_dict() for r in self.ranked],
            "frontier": [r.config.label for r in self.frontier],
            "eliminated": [r.config.label for r in self.eliminated],
        }


#: derived models are pure functions of the (immutable) kernel source,
#: so one derivation serves every prune/hint call in the process
_MODEL_CACHE: dict[str, KernelCostModel] = {}


def _cost_models() -> Mapping[str, KernelCostModel]:
    from repro.kernels import GPUCalcGlobal, GPUCalcShared

    if not _MODEL_CACHE:
        for key, kernel in (
            ("global", GPUCalcGlobal()),
            ("shared", GPUCalcShared()),
        ):
            model = derive_cost(kernel)
            assert model is not None  # both ship device code
            _MODEL_CACHE[key] = model
    return _MODEL_CACHE


def _geometry(kernel: str, stats: WorkloadStats, block_dim: int) -> tuple[int, int]:
    """(bdim, gdim) a launch of this kernel kind would use."""
    if kernel == "shared":
        return block_dim, max(1, stats.n_cells)
    return block_dim, max(1, -(-stats.n // block_dim))


def predicted_ms(
    kernel: str,
    stats: WorkloadStats,
    block_dim: int,
    *,
    spec: Optional[DeviceSpec] = None,
    mode: str = "estimate",
    models: Optional[Mapping[str, KernelCostModel]] = None,
) -> float:
    """Predicted milliseconds for one configuration (``inf`` = infeasible).

    ``hybrid`` is modeled as the density-weighted mix of the two paths:
    ``dense_frac`` of the work at the shared path's cost plus the
    remainder at the global path's cost (its shared-memory footprint —
    and therefore feasibility — is the shared kernel's).
    """
    spec = spec or DeviceSpec()
    models = models or _cost_models()
    if kernel == "hybrid":
        shared = predicted_ms(
            "shared", stats, block_dim, spec=spec, mode=mode, models=models
        )
        glob = predicted_ms(
            "global", stats, block_dim, spec=spec, mode=mode, models=models
        )
        return stats.dense_frac * shared + (1.0 - stats.dense_frac) * glob
    if kernel not in models:
        raise ValueError(f"unknown kernel kind {kernel!r}")
    model = models[kernel]
    bdim, gdim = _geometry(kernel, stats, block_dim)
    binding = stats.binding()
    binding["bdim"] = float(bdim)
    binding["gdim"] = float(gdim)
    try:
        return model.modeled_ms(binding, spec=spec, mode=mode)
    except ValueError:
        # occupancy rejected the configuration (footprint exceeds the SM)
        return math.inf


def prune_configs(
    stats: WorkloadStats,
    *,
    kernels: Sequence[str] = DEFAULT_KERNELS,
    block_dims: Sequence[int] = DEFAULT_TUNE_BLOCK_DIMS,
    spec: Optional[DeviceSpec] = None,
    safety: float = 3.0,
    top_k: Optional[int] = None,
    mode: str = "estimate",
) -> PruneResult:
    """Rank the configuration lattice by predicted cost and prune it.

    A configuration is *dominated* — eliminated — when its optimistic
    prediction (÷ ``safety``) still exceeds the best configuration's
    pessimistic prediction (× ``safety``); a measured search need not
    visit it.  Infeasible configurations (occupancy rejects the
    launch) are always eliminated.
    """
    if safety < 1.0:
        raise ValueError("safety must be >= 1")
    spec = spec or DeviceSpec()
    models = _cost_models()
    entries: list[tuple[TunerConfig, float]] = []
    for kernel in kernels:
        for bd in block_dims:
            cfg = TunerConfig(kernel=kernel, block_dim=bd)
            entries.append(
                (
                    cfg,
                    predicted_ms(
                        kernel, stats, bd, spec=spec, mode=mode, models=models
                    ),
                )
            )
    entries.sort(key=lambda e: (e[1], e[0].kernel, e[0].block_dim))
    feasible = [ms for _, ms in entries if math.isfinite(ms)]
    best = feasible[0] if feasible else math.inf
    result = PruneResult(stats=stats, safety=safety, top_k=top_k)
    for cfg, ms in entries:
        if not math.isfinite(ms):
            result.ranked.append(
                RankedConfig(cfg, ms, feasible=False, eliminated=True,
                             reason="infeasible: occupancy rejects the launch")
            )
            continue
        dominated = ms / safety > best * safety
        reason = (
            f"dominated: optimistic {ms / safety:.6f} ms > best "
            f"pessimistic {best * safety:.6f} ms"
            if dominated
            else ""
        )
        result.ranked.append(
            RankedConfig(cfg, ms, feasible=True, eliminated=dominated,
                         reason=reason)
        )
    return result


def cost_tie_break_hint(
    block_dims: Sequence[int] = (32, 64, 128, 256, 512, 1024),
    *,
    spec: Optional[DeviceSpec] = None,
    stats: Optional[WorkloadStats] = None,
) -> dict[int, bool]:
    """Cost-ranked tie-break for :class:`HybridSelectKernel`.

    For each block size: ``True`` when the shared path's predicted cost
    on a threshold-marginal workload is at most the global path's —
    then cells sitting exactly on the density threshold are worth a
    shared-memory block.  Infeasible shared launches are ``False``.
    Unlike the pure occupancy comparison
    (:func:`repro.analysis.kernelcheck.ties_dense_hint`) this weighs
    occupancy *and* the barrier/block overheads the shared path pays.
    """
    spec = spec or DeviceSpec()
    stats = stats or NOMINAL_STATS
    models = _cost_models()
    hint: dict[int, bool] = {}
    for bd in block_dims:
        shared = predicted_ms("shared", stats, bd, spec=spec, models=models)
        glob = predicted_ms("global", stats, bd, spec=spec, models=models)
        hint[bd] = math.isfinite(shared) and shared <= glob
    return hint
