"""Per-cluster descriptive statistics for discovery workflows.

The paper's motivating use case ("Computer-Aided Discovery") examines
datasets across densities and scales; these helpers summarize one
clustering so sweep results can be compared quantitatively rather than
by eyeballing label arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.table_dbscan import NOISE
from repro.index.base import as_points

__all__ = ["ClusterSummary", "ClusteringReport", "summarize_clustering"]


@dataclass(frozen=True)
class ClusterSummary:
    """Descriptive statistics of one cluster."""

    cluster_id: int
    size: int
    centroid: tuple[float, float]
    #: RMS distance of members from the centroid
    radius_rms: float
    bbox: tuple[float, float, float, float]

    @property
    def bbox_area(self) -> float:
        x0, y0, x1, y1 = self.bbox
        return max(0.0, x1 - x0) * max(0.0, y1 - y0)

    @property
    def density(self) -> float:
        """Members per unit bbox area (∞ for degenerate boxes)."""
        area = self.bbox_area
        return self.size / area if area > 0 else float("inf")


@dataclass(frozen=True)
class ClusteringReport:
    """Whole-clustering summary."""

    n_points: int
    n_clusters: int
    n_noise: int
    clusters: tuple[ClusterSummary, ...]

    @property
    def noise_fraction(self) -> float:
        return self.n_noise / self.n_points if self.n_points else 0.0

    @property
    def largest(self) -> ClusterSummary | None:
        return max(self.clusters, key=lambda c: c.size, default=None)

    def sizes(self) -> np.ndarray:
        return np.array(sorted((c.size for c in self.clusters), reverse=True))


def summarize_clustering(
    points: np.ndarray, labels: np.ndarray
) -> ClusteringReport:
    """Compute per-cluster statistics (vectorized over members)."""
    pts = as_points(points)
    labels = np.asarray(labels)
    if len(labels) != len(pts):
        raise ValueError("labels and points must have equal length")
    member = labels != NOISE
    n_clusters = int(labels.max()) + 1 if member.any() else 0

    summaries: list[ClusterSummary] = []
    for c in range(n_clusters):
        sel = pts[labels == c]
        if len(sel) == 0:
            raise ValueError(f"cluster id {c} has no members (labels not canonical)")
        centroid = sel.mean(axis=0)
        rms = float(np.sqrt(((sel - centroid) ** 2).sum(axis=1).mean()))
        summaries.append(
            ClusterSummary(
                cluster_id=c,
                size=int(len(sel)),
                centroid=(float(centroid[0]), float(centroid[1])),
                radius_rms=rms,
                bbox=(
                    float(sel[:, 0].min()),
                    float(sel[:, 1].min()),
                    float(sel[:, 0].max()),
                    float(sel[:, 1].max()),
                ),
            )
        )
    return ClusteringReport(
        n_points=len(pts),
        n_clusters=n_clusters,
        n_noise=int((~member).sum()),
        clusters=tuple(summaries),
    )
