"""KC007 — the symbolic static cost model.

Derives, for every kernel with ``device_code``, a **symbolic cost
expression**: per-thread worst-case operation counts as
:class:`~repro.analysis.absint.Lin` polynomials over the kernel's
parameters and the launch geometry (``bdim``/``gdim``), obtained by
walking the :mod:`~repro.analysis.cfg` CFG with the abstract
interpreter's product domain:

* **Loop trip counts** come from the interpreter's widening-safe
  :class:`~repro.analysis.absint.TripCount` bounds; fresh row symbols
  (``s3:G_max[h]``-style) are eliminated by interval resolution against
  the final abstract ranges, so a bound like ``s3 + 1`` resolves to the
  contract-level ``n``.  A loop the interpreter cannot bound is a KC007
  finding (severity ``error``) unless the kernel's
  :class:`CostContract` covers its variable with a trip estimate.
* **Counter sites** are the explicit ``ctx.count_*`` /
  ``ctx.atomic_add`` / ``ctx.result_append`` / ``ctx.syncthreads``
  calls — exactly what both execution backends increment — weighted by
  the product of enclosing loop bounds.  Both arms of every branch are
  charged (tainted branches serialize both arms, and an untainted
  worst case is still a worst case).
* **Memory transactions** reuse the KC003 access classification:
  coalesced/uniform warps cost one line transaction, ``strided(k)``
  costs ``min(warp, ceil(k·warp·word/line))``, gathers cost the full
  warp fan-out.
* **Evaluation** binds the polynomial at a concrete ``(params, bdim,
  gdim)`` point, builds a :class:`~repro.gpusim.costmodel.KernelCounters`
  and prices it with the *same*
  :class:`~repro.gpusim.costmodel.CostModel` arithmetic (and the same
  :mod:`repro.gpusim.constants`) the simulator uses, including the
  occupancy-scaled compute rate — so predicted milliseconds and the
  profiler's modeled milliseconds are directly comparable, and
  predicted cycles are ``ms × clock``.

The worst-case **bound** mode is sound by construction (every counter
evaluation is ≥ the measured counter for any run satisfying the value
contract); the **estimate** mode swaps contract-declared average trip
counts in for the pessimistic bounds to give a calibrated point
prediction (CI gates the ratio band).
"""

from __future__ import annotations

import ast
import inspect
import math
import textwrap
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.analysis.absint import (
    AbsintResult,
    Interval,
    KernelInvariants,
    Lin,
    Prover,
    interpret_kernel,
    parse_bound,
)
from repro.analysis.cfg import CFG, CFGNode, build_cfg
from repro.gpusim import constants as K
from repro.gpusim.costmodel import CostModel, KernelCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.launch import Kernel
from repro.gpusim.occupancy import OccupancyLimits, occupancy

__all__ = [
    "CostContract",
    "CostIssue",
    "LoopCost",
    "CounterSite",
    "KernelCostModel",
    "derive_cost",
    "eval_lin",
    "eval_expr",
    "COST_COUNTERS",
]

#: the KernelCounters fields the static model bounds (threads/blocks are
#: launch geometry, not per-thread work)
COST_COUNTERS: tuple[str, ...] = (
    "distance_calcs",
    "global_loads",
    "global_stores",
    "shared_loads",
    "shared_stores",
    "atomics",
    "syncs",
    "divergent_threads",
)

#: ``ctx.count_*`` hook -> counter it increments
_COUNT_CALLS: dict[str, str] = {
    "count_distance": "distance_calcs",
    "count_global_load": "global_loads",
    "count_global_store": "global_stores",
    "count_shared_load": "shared_loads",
    "count_shared_store": "shared_stores",
    "count_divergent": "divergent_threads",
}


# ---------------------------------------------------------------------------
# Contracts and report atoms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CostContract:
    """A kernel's declared cost expectations (see ``Kernel.cost_contract``).

    ``counter_bounds`` declares per-thread worst-case counter values in
    the :func:`~repro.analysis.absint.parse_bound` grammar (names, ints,
    ``+``/``-``/``*``, ``len(name)``); KC007 *checks* each declaration
    against the derived bound and warns when the declaration is below it
    (a lying contract).  ``trip_estimates`` maps loop variable names to
    average-case iteration-count expressions (names, numbers, ``+ - *
    / // %``, ``min``/``max``) used for point predictions — they may
    reference extra *statistics symbols* (documented in ``stats``) that
    the binding supplies, e.g. the average row length of a neighbor
    table.
    """

    counter_bounds: Mapping[str, str] = field(default_factory=dict)
    trip_estimates: Mapping[str, str] = field(default_factory=dict)
    #: documentation of the statistics symbols the estimates consume:
    #: symbol -> how the binding should compute it
    stats: Mapping[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "counter_bounds": dict(self.counter_bounds),
            "trip_estimates": dict(self.trip_estimates),
            "stats": dict(self.stats),
        }


@dataclass(frozen=True)
class CostIssue:
    """One KC007 diagnostic (kernelcheck lifts these into Findings)."""

    severity: str  # "warn" | "error"
    line: int
    message: str

    def to_dict(self) -> dict[str, object]:
        return {"severity": self.severity, "line": self.line, "message": self.message}


@dataclass(frozen=True)
class LoopCost:
    """One loop's resolved trip-count bound."""

    node_id: int
    line: int
    kind: str  # TripCount kind
    var: str  # loop target variable ("" for while/tuple targets)
    #: widening-safe upper bound over params/bdim/gdim (None = unbounded)
    bound: Optional[Lin]
    #: the kernel's contract covers this loop with a trip estimate
    estimated: bool = False

    def to_dict(self) -> dict[str, object]:
        return {
            "line": self.line,
            "kind": self.kind,
            "var": self.var,
            "bound": self.bound.render() if self.bound is not None else None,
            "estimated": self.estimated,
        }


@dataclass(frozen=True)
class CounterSite:
    """One counter-incrementing call and its enclosing loop chain."""

    line: int
    counter: str
    #: worst-case increment per execution (e.g. 2 words per appended field)
    bound_delta: int
    #: expected increment per execution (backends' common case)
    est_delta: int
    #: enclosing loop-head CFG node ids, outermost -> innermost
    loops: tuple[int, ...]


class UnboundedCostError(ValueError):
    """Raised when a binding evaluation hits an unbounded counter."""


# ---------------------------------------------------------------------------
# Fresh-symbol resolution
# ---------------------------------------------------------------------------


def _is_bindable(sym: str) -> bool:
    """Contract-level symbols (params, bdim/gdim, len(...)) survive
    resolution; interpreter-fresh symbols (they contain ``:``) do not."""
    return ":" not in sym


def _resolve_interval(
    lin: Lin, ranges: Mapping[str, Interval], pv: Prover, depth: int
) -> Interval:
    """Sound interval for ``lin`` over bindable symbols only."""
    acc = Interval.const(lin.const)
    for mono, coef in lin.terms.items():
        term = Interval.const(coef)
        for sym in mono:
            term = term.mul(_sym_interval(sym, ranges, pv, depth), pv)
        acc = acc.add(term)
    return acc


def _sym_interval(
    sym: str, ranges: Mapping[str, Interval], pv: Prover, depth: int
) -> Interval:
    if _is_bindable(sym):
        return Interval.exact(Lin.sym(sym))
    if depth <= 0:
        return Interval.top()
    itv = ranges.get(sym)
    if itv is None:
        return Interval.top()
    lo: Optional[Lin] = None
    hi: Optional[Lin] = None
    if itv.lo is not None:
        lo = _resolve_interval(itv.lo, ranges, pv, depth - 1).lo
    if itv.hi is not None:
        hi = _resolve_interval(itv.hi, ranges, pv, depth - 1).hi
    return Interval(lo, hi)


def resolve_upper(
    lin: Lin, ranges: Mapping[str, Interval], pv: Prover, depth: int = 5
) -> Optional[Lin]:
    """Upper-bound ``lin`` by a Lin over bindable symbols (None = unbounded)."""
    if all(_is_bindable(s) for s in lin.symbols()):
        return lin
    return _resolve_interval(lin, ranges, pv, depth).hi


# ---------------------------------------------------------------------------
# Numeric evaluation
# ---------------------------------------------------------------------------


def eval_lin(lin: Lin, binding: Mapping[str, float]) -> float:
    """Evaluate a resolved Lin at a concrete binding."""
    total = float(lin.const)
    for mono, coef in lin.terms.items():
        v = float(coef)
        for sym in mono:
            if sym not in binding:
                raise KeyError(
                    f"binding is missing symbol {sym!r} "
                    f"(needed by {lin.render()!r})"
                )
            v *= float(binding[sym])
        total += v
    return total


def eval_expr(expr: str, binding: Mapping[str, float]) -> float:
    """Evaluate a contract trip-estimate expression.

    Restricted grammar: names, numbers, ``+ - * / // %``, unary minus,
    ``min``/``max`` calls, parentheses.  Anything else is a ValueError.
    """
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as exc:
        raise ValueError(f"unparsable cost expression {expr!r}: {exc}") from exc

    def walk(node: ast.expr) -> float:
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return float(node.value)
        if isinstance(node, ast.Name):
            if node.id not in binding:
                raise KeyError(
                    f"binding is missing symbol {node.id!r} (needed by {expr!r})"
                )
            return float(binding[node.id])
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -walk(node.operand)
        if isinstance(node, ast.BinOp):
            a, b = walk(node.left), walk(node.right)
            if isinstance(node.op, ast.Add):
                return a + b
            if isinstance(node.op, ast.Sub):
                return a - b
            if isinstance(node.op, ast.Mult):
                return a * b
            if isinstance(node.op, ast.Div):
                return a / b
            if isinstance(node.op, ast.FloorDiv):
                return float(a // b)
            if isinstance(node.op, ast.Mod):
                return float(a % b)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("min", "max")
            and not node.keywords
        ):
            vals = [walk(a) for a in node.args]
            return min(vals) if node.func.id == "min" else max(vals)
        raise ValueError(f"unsupported construct in cost expression {expr!r}")

    return walk(tree.body)


# ---------------------------------------------------------------------------
# The derived model
# ---------------------------------------------------------------------------


@dataclass
class KernelCostModel:
    """The symbolic cost model derived from one kernel's device code."""

    kernel_name: str
    params: tuple[str, ...]
    loops: dict[int, LoopCost]
    sites: tuple[CounterSite, ...]
    #: per-thread worst-case counter polynomials (None = unbounded)
    per_thread: dict[str, Optional[Lin]]
    #: per-warp memory-transaction polynomials, keyed "global"/"shared"
    warp_transactions: dict[str, Optional[Lin]]
    issues: list[CostIssue]
    contract: Optional[CostContract]
    registers_per_thread: int = 32
    #: the source kernel (for shared-memory footprint at evaluation time);
    #: not part of the serialized report
    kernel: Optional[Kernel] = None

    # -- structure ---------------------------------------------------------

    @property
    def bounded(self) -> bool:
        """Every counter has a finite symbolic bound."""
        return all(v is not None for v in self.per_thread.values())

    def unbounded_loops(self) -> list[LoopCost]:
        return [
            lc
            for lc in self.loops.values()
            if lc.bound is None and not lc.estimated
        ]

    def required_symbols(self) -> set[str]:
        """Symbols a binding must supply to evaluate the bound mode."""
        syms: set[str] = {"bdim", "gdim"}
        for lin in self.per_thread.values():
            if lin is not None:
                syms |= lin.symbols()
        return syms

    # -- evaluation --------------------------------------------------------

    def _loop_factor(
        self, node_id: int, binding: Mapping[str, float], mode: str
    ) -> float:
        lc = self.loops[node_id]
        if mode == "estimate" and self.contract is not None:
            expr = self.contract.trip_estimates.get(lc.var)
            if expr is not None:
                return max(0.0, eval_expr(expr, binding))
        if lc.bound is None:
            raise UnboundedCostError(
                f"{self.kernel_name}: loop at line {lc.line} has no static "
                "trip bound and no contract estimate"
            )
        return max(0.0, eval_lin(lc.bound, binding))

    def counters_per_thread(
        self, binding: Mapping[str, float], *, mode: str = "estimate"
    ) -> dict[str, float]:
        """Per-thread counter values at a concrete binding.

        ``mode="bound"`` evaluates the sound worst case (per-loop factors
        clamped at zero, so the result stays an upper bound);
        ``mode="estimate"`` substitutes contract trip estimates and
        expected per-call deltas.
        """
        if mode not in ("bound", "estimate"):
            raise ValueError(f"unknown cost mode {mode!r}")
        vals = {c: 0.0 for c in COST_COUNTERS}
        for site in self.sites:
            f = float(site.bound_delta if mode == "bound" else site.est_delta)
            for lid in site.loops:
                f *= self._loop_factor(lid, binding, mode)
            vals[site.counter] += f
        return vals

    def kernel_counters(
        self, binding: Mapping[str, float], *, mode: str = "estimate"
    ) -> KernelCounters:
        """Predicted whole-launch :class:`KernelCounters` at a binding."""
        bdim = int(binding["bdim"])
        gdim = int(binding["gdim"])
        threads = bdim * gdim
        per = self.counters_per_thread(binding, mode=mode)
        return KernelCounters(
            threads=threads,
            blocks=gdim,
            **{c: int(math.ceil(per[c] * threads)) for c in COST_COUNTERS},
        )

    def occupancy_fraction(
        self, block_dim: int, spec: Optional[DeviceSpec] = None
    ) -> float:
        """Static occupancy for this kernel at ``block_dim`` on ``spec``."""
        spec = spec or DeviceSpec()
        shared = (
            self.kernel.shared_mem_per_block(block_dim)
            if self.kernel is not None
            else 0
        )
        occ = occupancy(
            block_dim,
            limits=OccupancyLimits.for_spec(spec),
            registers_per_thread=self.registers_per_thread,
            shared_mem_per_block_bytes=shared,
        )
        return occ.fraction

    def modeled_ms(
        self,
        binding: Mapping[str, float],
        *,
        spec: Optional[DeviceSpec] = None,
        mode: str = "estimate",
    ) -> float:
        """Predicted kernel milliseconds — same arithmetic as the simulator.

        ``binding`` must carry ``bdim``/``gdim`` plus every kernel
        parameter appearing in the bounds (and any contract statistics
        symbols when ``mode="estimate"``).
        """
        spec = spec or DeviceSpec()
        counters = self.kernel_counters(binding, mode=mode)
        frac = self.occupancy_fraction(int(binding["bdim"]), spec)
        model: CostModel = spec.cost_model()
        return model.kernel_time_ms(counters, occupancy=max(frac, 1e-9))

    def modeled_cycles(
        self,
        binding: Mapping[str, float],
        *,
        spec: Optional[DeviceSpec] = None,
        mode: str = "estimate",
    ) -> float:
        """Predicted device cycles: ``ms × clock``."""
        spec = spec or DeviceSpec()
        ms = self.modeled_ms(binding, spec=spec, mode=mode)
        return ms * spec.clock_mhz * 1e3

    # -- reporting ---------------------------------------------------------

    def per_launch(self) -> dict[str, Optional[Lin]]:
        """Whole-launch counter polynomials (per-thread × bdim·gdim)."""
        threads = Lin.sym("bdim").mul(Lin.sym("gdim"))
        return {
            c: (lin.mul(threads) if lin is not None else None)
            for c, lin in self.per_thread.items()
        }

    def to_dict(self) -> dict[str, object]:
        return {
            "kernel": self.kernel_name,
            "params": list(self.params),
            "bounded": self.bounded,
            "loops": [
                lc.to_dict()
                for lc in sorted(self.loops.values(), key=lambda c: (c.line, c.node_id))
            ],
            "per_thread_bounds": {
                c: (lin.render() if lin is not None else None)
                for c, lin in self.per_thread.items()
            },
            "per_launch_bounds": {
                c: (lin.render() if lin is not None else None)
                for c, lin in self.per_launch().items()
            },
            "warp_transactions": {
                k: (lin.render() if lin is not None else None)
                for k, lin in self.warp_transactions.items()
            },
            "contract": self.contract.to_dict() if self.contract else None,
            "issues": [i.to_dict() for i in self.issues],
        }

    def render(self) -> list[str]:
        """Human-readable report lines (for ``repro analyze cost``)."""
        lines = [f"{self.kernel_name}: {'bounded' if self.bounded else 'UNBOUNDED'}"]
        for lc in sorted(self.loops.values(), key=lambda c: (c.line, c.node_id)):
            bound = lc.bound.render() if lc.bound is not None else "unbounded"
            est = " (contract estimate)" if lc.estimated else ""
            lines.append(f"  loop L{lc.line} {lc.kind} [{lc.var or '_'}]: {bound}{est}")
        for c in COST_COUNTERS:
            lin = self.per_thread.get(c)
            if lin is None:
                lines.append(f"  {c}/thread <= unbounded")
            elif lin.is_const() and lin.const == 0:
                continue
            else:
                lines.append(f"  {c}/thread <= {lin.render()}")
        for k in ("global", "shared"):
            lin = self.warp_transactions.get(k)
            if lin is not None and not (lin.is_const() and lin.const == 0):
                lines.append(f"  {k} txns/warp <= {lin.render()}")
            elif lin is None:
                lines.append(f"  {k} txns/warp <= unbounded")
        for issue in self.issues:
            lines.append(f"  [{issue.severity}] L{issue.line}: {issue.message}")
        return lines


# ---------------------------------------------------------------------------
# Derivation
# ---------------------------------------------------------------------------


def _device_fn(kernel: Kernel) -> Optional[ast.FunctionDef]:
    if type(kernel).device_code is Kernel.device_code:
        return None
    source = textwrap.dedent(inspect.getsource(type(kernel).device_code))
    module = ast.parse(source)
    return next(n for n in module.body if isinstance(n, ast.FunctionDef))


def _fn_params(fn: ast.FunctionDef) -> tuple[str, ...]:
    names = [a.arg for a in fn.args.args if a.arg not in ("self", "ctx")]
    names += [a.arg for a in fn.args.kwonlyargs]
    return tuple(names)


def _literal_int(node: ast.expr) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


def _loop_ids(node: CFGNode) -> tuple[int, ...]:
    return tuple(f.node_id for f in node.stack if f.kind == "loop")


def _stmt_span(stmt: ast.stmt) -> tuple[int, int]:
    end = getattr(stmt, "end_lineno", None) or stmt.lineno
    return stmt.lineno, end


def _node_for_line(cfg: CFG, line: int) -> Optional[CFGNode]:
    """The innermost CFG node whose source span contains ``line``.

    Simple statements and barriers match their full span; branch and
    loop heads match only their test expression (their ``stmt`` spans
    the whole body, which belongs to deeper nodes).
    """
    best: Optional[CFGNode] = None
    for node in cfg.nodes:
        if node.stmt is None:
            continue
        if node.kind in ("stmt", "barrier"):
            lo, hi = _stmt_span(node.stmt)
        elif node.test is not None:
            lo = node.test.lineno
            hi = getattr(node.test, "end_lineno", None) or lo
        else:
            lo = hi = node.stmt.lineno
        if lo <= line <= hi and (best is None or len(node.stack) > len(best.stack)):
            best = node
    return best


def _collect_sites(
    cfg: CFG, ctx_name: str
) -> tuple[list[CounterSite], list[CostIssue]]:
    sites: list[CounterSite] = []
    issues: list[CostIssue] = []
    for node in cfg.nodes:
        if node.kind not in ("stmt", "barrier") or node.stmt is None:
            continue
        loops = _loop_ids(node)
        for call in ast.walk(node.stmt):
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id == ctx_name
            ):
                continue
            attr = call.func.attr
            line = call.lineno
            if attr in _COUNT_CALLS:
                delta = 1
                if call.args:
                    lit = _literal_int(call.args[0])
                    if lit is None:
                        issues.append(
                            CostIssue(
                                "warn",
                                line,
                                f"non-constant {attr}() argument; charging 1",
                            )
                        )
                    else:
                        delta = lit
                sites.append(
                    CounterSite(line, _COUNT_CALLS[attr], delta, delta, loops)
                )
            elif attr == "atomic_add":
                sites.append(CounterSite(line, "atomics", 1, 1, loops))
            elif attr == "result_append":
                arity = 2
                if len(call.args) >= 2 and isinstance(call.args[1], ast.Tuple):
                    arity = max(1, len(call.args[1].elts))
                sites.append(CounterSite(line, "atomics", 1, 1, loops))
                # each appended field is one 4-byte word in the common
                # layouts; 8-byte fields double it, so 2×arity is the
                # sound per-append store bound
                sites.append(
                    CounterSite(line, "global_stores", 2 * arity, arity, loops)
                )
            elif attr == "syncthreads":
                sites.append(CounterSite(line, "syncs", 1, 1, loops))
    return sites, issues


def _txn_factor(classification: str) -> int:
    base = classification.split("(", 1)[0]
    if base in ("uniform", "coalesced"):
        return 1
    if base == "strided":
        try:
            stride = abs(int(classification[len("strided(") : -1]))
        except ValueError:
            return K.WARP_SIZE
        per_warp = math.ceil(stride * K.WARP_SIZE * K.WORD_BYTES / K.MEM_LINE_BYTES)
        return max(1, min(K.WARP_SIZE, per_warp))
    # bounded-stride and gathers: worst-case warp fan-out
    return K.WARP_SIZE


def derive_cost(kernel: Kernel) -> Optional[KernelCostModel]:
    """Derive the symbolic cost model for ``kernel``.

    Returns ``None`` for kernels without an interpreter path (no
    ``device_code`` override — e.g. dispatch-only kernels).
    """
    fn = _device_fn(kernel)
    if fn is None:
        return None
    cfg = build_cfg(fn)
    invariants: Optional[KernelInvariants]
    try:
        invariants = kernel.value_invariants()
    except ValueError:
        invariants = None
    result = interpret_kernel(fn, invariants, cfg)
    try:
        contract = kernel.cost_contract()
    except ValueError:
        contract = None
    return derive_cost_from_result(
        kernel_name=kernel.name,
        fn=fn,
        cfg=cfg,
        result=result,
        contract=contract,
        registers_per_thread=kernel.registers_per_thread,
        kernel=kernel,
    )


def derive_cost_from_result(
    *,
    kernel_name: str,
    fn: ast.FunctionDef,
    cfg: CFG,
    result: AbsintResult,
    contract: Optional[CostContract],
    registers_per_thread: int = 32,
    kernel: Optional[Kernel] = None,
) -> KernelCostModel:
    """Build the cost model from an existing interpretation (kernelcheck
    reuses its KC005 run instead of interpreting twice)."""
    pv = Prover(dict(result.ranges))
    issues: list[CostIssue] = []
    trips = dict(contract.trip_estimates) if contract else {}

    # -- loops -------------------------------------------------------------
    loops: dict[int, LoopCost] = {}
    for nid, tc in sorted(result.loop_trips.items()):
        node = cfg.nodes[nid]
        var = ""
        if isinstance(node.stmt, ast.For) and isinstance(node.stmt.target, ast.Name):
            var = node.stmt.target.id
        bound: Optional[Lin] = None
        if tc.count is not None:
            bound = resolve_upper(tc.count, result.ranges, pv)
        estimated = var in trips
        loops[nid] = LoopCost(
            node_id=nid,
            line=tc.line,
            kind=tc.kind,
            var=var,
            bound=bound,
            estimated=estimated,
        )
        if bound is None and not estimated:
            detail = tc.detail or "no static trip bound"
            issues.append(
                CostIssue(
                    "error",
                    tc.line,
                    f"unbounded loop ({tc.kind}): {detail}; bound the loop "
                    f"via value_invariants() or declare a cost_contract() "
                    f"trip estimate for {var or '<loop>'!r}",
                )
            )

    # -- counter sites -----------------------------------------------------
    arg_names = [a.arg for a in fn.args.args]
    ctx_name = "ctx"
    for cand in arg_names[:2]:
        if cand != "self":
            ctx_name = cand
            break
    sites, site_issues = _collect_sites(cfg, ctx_name)
    issues.extend(site_issues)

    # -- per-thread worst-case polynomials --------------------------------
    per_thread: dict[str, Optional[Lin]] = {c: Lin.of(0) for c in COST_COUNTERS}
    for site in sites:
        term: Optional[Lin] = Lin.of(site.bound_delta)
        for lid in site.loops:
            lb = loops[lid].bound
            if lb is None:
                term = None
                break
            term = term.mul(lb)
        prev = per_thread[site.counter]
        per_thread[site.counter] = (
            prev + term if prev is not None and term is not None else None
        )

    # -- warp-level memory transactions -----------------------------------
    warp_txn: dict[str, Optional[Lin]] = {"global": Lin.of(0), "shared": Lin.of(0)}
    for access in result.accesses:
        node = _node_for_line(cfg, access.line)
        mult: Optional[Lin] = Lin.of(_txn_factor(access.classification))
        if node is not None:
            for lid in _loop_ids(node):
                lb = loops[lid].bound if lid in loops else None
                if lb is None:
                    mult = None
                    break
                mult = mult.mul(lb)
        key = "shared" if access.shared else "global"
        prev = warp_txn[key]
        warp_txn[key] = (
            prev + mult if prev is not None and mult is not None else None
        )

    # -- contract checks ---------------------------------------------------
    if contract is not None:
        for counter, expr in sorted(contract.counter_bounds.items()):
            if counter not in COST_COUNTERS:
                issues.append(
                    CostIssue("warn", 0, f"unknown counter {counter!r} in contract")
                )
                continue
            try:
                declared = parse_bound(expr)
            except ValueError as exc:
                issues.append(
                    CostIssue(
                        "warn", 0, f"unusable counter bound for {counter}: {exc}"
                    )
                )
                continue
            derived = per_thread[counter]
            if derived is None:
                issues.append(
                    CostIssue(
                        "warn",
                        0,
                        f"declared bound for {counter} cannot be checked: "
                        "derived worst case is unbounded",
                    )
                )
            elif not pv.le(derived, declared):
                issues.append(
                    CostIssue(
                        "warn",
                        0,
                        f"cost_contract() declares per-thread {counter} <= "
                        f"{expr}, below the derived worst case "
                        f"{derived.render()}",
                    )
                )
        for var, expr in sorted(contract.trip_estimates.items()):
            try:
                ast.parse(expr, mode="eval")
            except SyntaxError:
                issues.append(
                    CostIssue(
                        "warn", 0, f"unparsable trip estimate for {var!r}: {expr!r}"
                    )
                )

    return KernelCostModel(
        kernel_name=kernel_name,
        params=_fn_params(fn),
        loops=loops,
        sites=tuple(sites),
        per_thread=per_thread,
        warp_transactions=warp_txn,
        issues=issues,
        contract=contract,
        registers_per_thread=registers_per_thread,
        kernel=kernel,
    )
