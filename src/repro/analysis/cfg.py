"""Control-flow graphs over kernel *device code* ASTs.

Device code (see :mod:`repro.gpusim.kernelapi`) is a restricted Python
dialect: straight-line statements, ``if``/``for``/``while`` control flow,
early ``return`` guards, and block barriers written as
``yield ctx.syncthreads()``.  :func:`build_cfg` turns one device-code
function definition into a statement-level CFG whose nodes carry

* the originating AST statement (and, for branches/loops, the test),
* the enclosing *control stack* — which ``if`` arm / loop body the
  statement sits in — used by the barrier-divergence pass, and
* ``barrier`` markers, so race detection can reason about
  barrier-delimited path segments (including loop back edges).

The graph is tiny (one node per statement), so the analyses in
:mod:`repro.analysis.kernelcheck` simply BFS it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "CFG",
    "CFGNode",
    "Frame",
    "Liveness",
    "build_cfg",
    "compute_liveness",
    "is_barrier_stmt",
    "node_defs_uses",
]


@dataclass(frozen=True)
class Frame:
    """One level of the control stack enclosing a statement."""

    kind: str  #: ``"if"`` or ``"loop"``
    node_id: int  #: CFG node id of the branch / loop-head node
    arm: str = ""  #: ``"then"`` / ``"else"`` for ``if`` frames


@dataclass
class CFGNode:
    """One statement (or control-flow head) of the device function."""

    id: int
    kind: str  #: ``entry`` | ``exit`` | ``stmt`` | ``barrier`` | ``branch`` | ``loop``
    stmt: Optional[ast.AST] = None
    test: Optional[ast.expr] = None  #: branch condition / ``while`` test
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)
    stack: tuple[Frame, ...] = ()

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)


class CFG:
    """A per-function control-flow graph."""

    def __init__(self) -> None:
        self.nodes: list[CFGNode] = []
        self.entry: int = 0
        self.exit: int = 0

    def node(self, node_id: int) -> CFGNode:
        return self.nodes[node_id]

    def add(
        self,
        kind: str,
        stmt: Optional[ast.AST] = None,
        test: Optional[ast.expr] = None,
        stack: tuple[Frame, ...] = (),
    ) -> CFGNode:
        n = CFGNode(id=len(self.nodes), kind=kind, stmt=stmt, test=test, stack=stack)
        self.nodes.append(n)
        return n

    def edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
            self.nodes[dst].preds.append(src)

    # -- queries used by the analysis passes ---------------------------
    def barriers(self) -> list[CFGNode]:
        return [n for n in self.nodes if n.kind == "barrier"]

    def statements(self) -> list[CFGNode]:
        return [n for n in self.nodes if n.kind in ("stmt", "branch", "loop")]

    def reachable_without_barrier(self, src: int) -> set[int]:
        """Node ids reachable from ``src`` along paths that never *cross*
        a barrier (barrier nodes terminate the walk; loop back edges are
        followed, so a node can reach itself)."""
        seen: set[int] = set()
        work = list(self.nodes[src].succs)
        while work:
            nid = work.pop()
            if nid in seen:
                continue
            seen.add(nid)
            if self.nodes[nid].kind == "barrier":
                continue
            work.extend(self.nodes[nid].succs)
        return seen

    def barrier_reachable_from(self, src: int) -> bool:
        """Whether any barrier lies downstream of ``src`` (crossing
        barriers allowed — this is plain reachability)."""
        seen: set[int] = set()
        work = list(self.nodes[src].succs)
        while work:
            nid = work.pop()
            if nid in seen:
                continue
            seen.add(nid)
            if self.nodes[nid].kind == "barrier":
                return True
            work.extend(self.nodes[nid].succs)
        return False


def is_barrier_stmt(stmt: ast.stmt) -> bool:
    """Match the canonical barrier form ``yield ctx.syncthreads()``."""
    if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Yield):
        return False
    call = stmt.value.value
    return (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Attribute)
        and call.func.attr == "syncthreads"
    )


class _Builder:
    """Recursive-descent CFG construction with loop break/continue plumbing."""

    def __init__(self) -> None:
        self.cfg = CFG()
        entry = self.cfg.add("entry")
        exit_ = self.cfg.add("exit")
        self.cfg.entry, self.cfg.exit = entry.id, exit_.id
        #: per enclosing loop: (loop-head id, break-target collector)
        self._loops: list[tuple[int, list[int]]] = []

    def build(self, fn: ast.FunctionDef) -> CFG:
        frontier = self._body(fn.body, [self.cfg.entry], ())
        for nid in frontier:
            self.cfg.edge(nid, self.cfg.exit)
        return self.cfg

    # ------------------------------------------------------------------
    def _body(
        self, stmts: list[ast.stmt], preds: list[int], stack: tuple[Frame, ...]
    ) -> list[int]:
        frontier = list(preds)
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier, stack)
            if not frontier:  # everything returned/broke/continued
                break
        return frontier

    def _stmt(
        self, stmt: ast.stmt, preds: list[int], stack: tuple[Frame, ...]
    ) -> list[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            branch = cfg.add("branch", stmt, stmt.test, stack)
            for p in preds:
                cfg.edge(p, branch.id)
            then_stack = (*stack, Frame("if", branch.id, "then"))
            then_f = self._body(stmt.body, [branch.id], then_stack)
            if stmt.orelse:
                else_stack = (*stack, Frame("if", branch.id, "else"))
                else_f = self._body(stmt.orelse, [branch.id], else_stack)
            else:
                else_f = [branch.id]  # fall-through edge
            return then_f + else_f

        if isinstance(stmt, (ast.For, ast.While)):
            test = stmt.test if isinstance(stmt, ast.While) else stmt.iter
            head = cfg.add("loop", stmt, test, stack)
            for p in preds:
                cfg.edge(p, head.id)
            breaks: list[int] = []
            self._loops.append((head.id, breaks))
            body_stack = (*stack, Frame("loop", head.id))
            body_f = self._body(stmt.body, [head.id], body_stack)
            self._loops.pop()
            for nid in body_f:
                cfg.edge(nid, head.id)  # back edge
            # the zero-trip / loop-exit path falls out of the head
            out = [head.id, *breaks]
            if stmt.orelse:
                out = self._body(stmt.orelse, out, stack)
            return out

        if isinstance(stmt, ast.Return):
            node = cfg.add("stmt", stmt, None, stack)
            for p in preds:
                cfg.edge(p, node.id)
            cfg.edge(node.id, cfg.exit)
            return []

        if isinstance(stmt, ast.Continue):
            node = cfg.add("stmt", stmt, None, stack)
            for p in preds:
                cfg.edge(p, node.id)
            if self._loops:
                cfg.edge(node.id, self._loops[-1][0])
            return []

        if isinstance(stmt, ast.Break):
            node = cfg.add("stmt", stmt, None, stack)
            for p in preds:
                cfg.edge(p, node.id)
            if self._loops:
                self._loops[-1][1].append(node.id)
            return []

        if isinstance(stmt, ast.With):
            node = cfg.add("stmt", stmt, None, stack)
            for p in preds:
                cfg.edge(p, node.id)
            return self._body(stmt.body, [node.id], stack)

        if isinstance(stmt, ast.Try):
            # device code has no try/except in practice; flatten
            # conservatively so the analysis never crashes on one
            f = self._body(stmt.body, preds, stack)
            for handler in stmt.handlers:
                f = self._body(handler.body, f, stack)
            if stmt.finalbody:
                f = self._body(stmt.finalbody, f, stack)
            return f

        kind = "barrier" if is_barrier_stmt(stmt) else "stmt"
        node = cfg.add(kind, stmt, None, stack)
        for p in preds:
            cfg.edge(p, node.id)
        return [node.id]


def build_cfg(fn: ast.FunctionDef) -> CFG:
    """Build the statement-level CFG of one device-code function."""
    return _Builder().build(fn)


# ======================================================================
# def/use + liveness (feeds the KC006 register-pressure estimate)
# ======================================================================
def node_defs_uses(node: CFGNode) -> tuple[frozenset[str], frozenset[str]]:
    """Names *defined* and *used* by one CFG node.

    Only the node's own header is considered — a branch contributes its
    test, a ``for`` head its target and iterable — never the nested
    body, which has its own nodes.  ``buf[i] = x`` defines nothing
    (``buf`` and ``i`` are uses); an augmented assignment both defines
    and uses its target.
    """
    s = node.stmt
    exprs: list[ast.expr] = []
    aug_target: Optional[ast.expr] = None
    if node.kind == "branch":
        exprs = [node.test] if node.test is not None else []
    elif node.kind == "loop":
        if isinstance(s, ast.For):
            exprs = [s.target, s.iter]
        elif node.test is not None:
            exprs = [node.test]
    elif isinstance(s, ast.Assign):
        exprs = [*s.targets, s.value]
    elif isinstance(s, ast.AnnAssign):
        exprs = [e for e in (s.target, s.value) if e is not None]
    elif isinstance(s, ast.AugAssign):
        exprs = [s.target, s.value]
        aug_target = s.target
    elif isinstance(s, ast.Expr):
        exprs = [s.value]
    elif isinstance(s, ast.Return):
        exprs = [s.value] if s.value is not None else []
    elif isinstance(s, ast.With):
        exprs = [i.context_expr for i in s.items]
        exprs += [i.optional_vars for i in s.items if i.optional_vars is not None]
    defs: set[str] = set()
    uses: set[str] = set()
    for e in exprs:
        for sub in ast.walk(e):
            if isinstance(sub, ast.Name):
                if isinstance(sub.ctx, ast.Store):
                    defs.add(sub.id)
                elif isinstance(sub.ctx, ast.Load):
                    uses.add(sub.id)
    if isinstance(aug_target, ast.Name):
        uses.add(aug_target.id)
    return frozenset(defs), frozenset(uses)


@dataclass
class Liveness:
    """Per-node def/use sets and the live-variable fixpoint.

    ``loop_carried`` holds names whose value survives a loop back edge
    (live into the loop head along a back edge *and* redefined inside
    that loop) — the values a compiler must keep resident across an
    entire iteration rather than within one.
    """

    defs: dict[int, frozenset[str]]
    uses: dict[int, frozenset[str]]
    live_in: dict[int, frozenset[str]]
    live_out: dict[int, frozenset[str]]
    loop_carried: frozenset[str]


def _in_loop(node: CFGNode, head_id: int) -> bool:
    return any(fr.kind == "loop" and fr.node_id == head_id for fr in node.stack)


def compute_liveness(cfg: CFG) -> Liveness:
    """Backward live-variable dataflow over the statement CFG."""
    defs: dict[int, frozenset[str]] = {}
    uses: dict[int, frozenset[str]] = {}
    for n in cfg.nodes:
        defs[n.id], uses[n.id] = node_defs_uses(n)
    empty: frozenset[str] = frozenset()
    live_in = {n.id: empty for n in cfg.nodes}
    live_out = {n.id: empty for n in cfg.nodes}
    changed = True
    while changed:
        changed = False
        for n in reversed(cfg.nodes):
            out = empty.union(*(live_in[s] for s in n.succs)) if n.succs else empty
            inn = uses[n.id] | (out - defs[n.id])
            if out != live_out[n.id] or inn != live_in[n.id]:
                live_out[n.id], live_in[n.id] = out, inn
                changed = True

    carried: set[str] = set()
    for u in cfg.nodes:
        for v_id in u.succs:
            head = cfg.node(v_id)
            # a succ edge into a loop head from inside its own body is
            # the back edge (entry edges come from outside the frame)
            if head.kind != "loop" or not _in_loop(u, v_id):
                continue
            inside = [w for w in cfg.nodes if w.id == v_id or _in_loop(w, v_id)]
            defined_inside = empty.union(*(defs[w.id] for w in inside))
            carried |= live_out[u.id] & live_in[v_id] & defined_inside
    return Liveness(defs, uses, live_in, live_out, frozenset(carried))
