"""Clustering comparison, validation, and static-analysis utilities."""

from repro.analysis.lint import LintFinding, lint_source, run_lint
from repro.analysis.metrics import (
    adjusted_rand_index,
    cluster_sizes,
    dbscan_equivalent,
    noise_fraction,
    same_clustering,
)
from repro.analysis.validation import ValidationReport, validate_hybrid

__all__ = [
    "same_clustering",
    "dbscan_equivalent",
    "adjusted_rand_index",
    "cluster_sizes",
    "noise_fraction",
    "validate_hybrid",
    "ValidationReport",
    "LintFinding",
    "lint_source",
    "run_lint",
]
