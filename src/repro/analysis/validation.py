"""End-to-end cross-validation of HYBRID-DBSCAN against the reference.

Used by the test suite and the examples to assert that the whole hybrid
pipeline (grid index → GPU kernels → batching → neighbor table → table
DBSCAN) produces DBSCAN-correct clusterings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.metrics import adjusted_rand_index, dbscan_equivalent, same_clustering
from repro.baseline.sequential_dbscan import sequential_dbscan
from repro.core.hybrid_dbscan import HybridDBSCAN

__all__ = ["ValidationReport", "validate_hybrid"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one hybrid-vs-reference comparison."""

    n_points: int
    eps: float
    minpts: int
    exact_match: bool
    dbscan_equivalent: bool
    ari: float
    hybrid_clusters: int
    reference_clusters: int
    hybrid_noise: int
    reference_noise: int

    @property
    def ok(self) -> bool:
        """True when the hybrid clustering is DBSCAN-correct."""
        return self.dbscan_equivalent

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "OK" if self.ok else "MISMATCH"
        return (
            f"[{status}] n={self.n_points} eps={self.eps} minpts={self.minpts} "
            f"clusters={self.hybrid_clusters}/{self.reference_clusters} "
            f"noise={self.hybrid_noise}/{self.reference_noise} ARI={self.ari:.4f}"
        )


def validate_hybrid(
    points: np.ndarray,
    eps: float,
    minpts: int,
    *,
    hybrid: Optional[HybridDBSCAN] = None,
    reference_index: str = "brute",
) -> ValidationReport:
    """Cluster with both implementations and compare."""
    h = hybrid or HybridDBSCAN()
    grid, table, _ = h.build_table(points, eps)
    hybrid_labels = h.cluster_table(grid, table, minpts)
    ref_labels, _ = sequential_dbscan(points, eps, minpts, index_kind=reference_index)

    exact = same_clustering(hybrid_labels, ref_labels)
    if exact:
        equivalent = True
    else:
        # compare in table (sorted) order for border-aware equivalence
        equivalent = dbscan_equivalent(
            hybrid_labels[grid.sort_order],
            ref_labels[grid.sort_order],
            table,
            minpts,
        )
    return ValidationReport(
        n_points=len(points),
        eps=float(eps),
        minpts=int(minpts),
        exact_match=exact,
        dbscan_equivalent=equivalent,
        ari=adjusted_rand_index(hybrid_labels, ref_labels),
        hybrid_clusters=int(hybrid_labels.max()) + 1 if (hybrid_labels >= 0).any() else 0,
        reference_clusters=int(ref_labels.max()) + 1 if (ref_labels >= 0).any() else 0,
        hybrid_noise=int((hybrid_labels == -1).sum()),
        reference_noise=int((ref_labels == -1).sum()),
    )
