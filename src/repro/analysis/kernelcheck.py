"""kernelcheck — static verification of simulated-GPU device kernels.

The runtime gpusanitizer (:mod:`repro.gpusim.sanitizer`) can only judge
schedules that actually execute; this module verifies the kernel
invariants **over all paths, before any launch**, by analyzing the
``device_code`` generator of each :class:`~repro.gpusim.launch.Kernel`
(AST → CFG via :mod:`repro.analysis.cfg` → dataflow).  Six passes:

``KC001`` — barrier divergence
    A ``yield ctx.syncthreads()`` that is control-dependent on a
    *thread-dependent* condition (dataflow taint from
    ``ctx.thread_idx`` / ``ctx.global_id`` through assignments) without
    a matching barrier on the sibling path, a barrier inside a loop
    whose trip count is thread-dependent, or a thread-dependent early
    ``return`` that skips a downstream barrier.  All are the UB class
    :class:`~repro.gpusim.kernelapi.BarrierDivergenceError` catches at
    runtime — on the one schedule that ran.

``KC002`` — shared-memory race
    A write to a ``ctx.shared(...)`` buffer and a read/write of the
    same buffer connected by a barrier-free CFG path (loop back edges
    included), where the two accesses may come from different threads
    and may touch the same slot.  Per-thread slots (identical
    tid-affine index expressions) and same-single-thread-guarded
    accesses (``if tid == 0:``) are exempt.

``KC003`` — uncoalesced global access
    Global-buffer index expressions that are affine in the thread id
    with |stride| > 1, or non-affine pure functions of the thread id
    (``tid * tid``).  Runtime-dependent gathers (index loaded from
    another array, symbolic strides) are no longer skipped: the
    abstract interpreter (:mod:`repro.analysis.absint`) classifies each
    access uniform / coalesced / strided / bounded-stride /
    gather-bounded / gather-unbounded in the report's access table.

``KC004`` — static resources / occupancy
    Shared bytes are extracted from the ``ctx.shared`` shapes as a
    function of ``block_dim`` and cross-checked against the kernel's
    declared ``shared_mem_per_block``; the declared footprint plus the
    register estimate feed :func:`repro.gpusim.occupancy.occupancy` to
    predict occupancy per ``(block_dim, DeviceSpec)`` — the exact
    computation :func:`repro.gpusim.launch.launch` performs, so the
    static table provably matches the simulator's achieved occupancy.

``KC005`` — static bounds proofs
    The abstract interpreter (interval × tid-affine product domain with
    widening, :mod:`repro.analysis.absint`) attempts to prove every
    global/shared array access in-bounds against the buffer-length and
    value contracts each kernel declares via
    :meth:`~repro.gpusim.launch.Kernel.value_invariants`.  A shared
    access that can exceed its declared shape, or a contract-covered
    global access whose index interval is not contained in
    ``[0, len)``, is an error — caught before the runtime memcheck
    ever launches.  Global accesses with no contract are reported as
    *assumed*, never as findings.

``KC006`` — register-pressure estimate
    Backward liveness over the statement CFG
    (:func:`repro.analysis.cfg.compute_liveness`) gives max-live-across-
    program-points of the kernel's locals, with loop-carried values
    weighted double (they stay resident across whole iterations).  The
    estimate replaces the old locals+params count proxy and is checked
    against the kernel's declared ``registers_per_thread``; declaring
    fewer registers than the estimate is a warning because the
    occupancy table would be optimistic.

``analyze_shipped()`` runs all passes over the registered kernel set
(:func:`repro.kernels.shipped_kernels`); the CLI front end is
``repro analyze kernels [--format json] [--fail-on warn|error]``.
"""

from __future__ import annotations

import ast
import inspect
import json
import sys
import textwrap
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, TypeGuard

import numpy as np

from repro.analysis.absint import (
    AbsintResult,
    AccessRecord,
    ContractError,
    KernelInvariants,
    interpret_kernel,
)
from repro.analysis.cfg import CFG, CFGNode, build_cfg, compute_liveness
from repro.analysis.costmodel import KernelCostModel, derive_cost_from_result
from repro.gpusim.device import DeviceSpec
from repro.gpusim.launch import Kernel
from repro.gpusim.occupancy import OccupancyLimits, occupancy

__all__ = [
    "Finding",
    "KernelReport",
    "OccupancyEntry",
    "SharedDecl",
    "analyze_device_source",
    "analyze_kernel",
    "analyze_shipped",
    "default_block_dims",
    "static_occupancy_table",
    "ties_dense_hint",
    "main",
]

#: block dims the static occupancy table is evaluated at by default
DEFAULT_BLOCK_DIMS: tuple[int, ...] = (64, 128, 256)

SEVERITY_ORDER = {"warn": 0, "error": 1}


def default_block_dims() -> tuple[int, ...]:
    return DEFAULT_BLOCK_DIMS


# ======================================================================
# report datatypes
# ======================================================================
@dataclass(frozen=True)
class Finding:
    """One static-analysis violation in one kernel."""

    rule: str  #: KC001..KC004
    severity: str  #: ``"error"`` or ``"warn"``
    kernel: str
    line: int  #: 1-based line within the ``device_code`` source
    message: str

    def render(self) -> str:
        return f"{self.kernel}:{self.line}: {self.rule} [{self.severity}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "kernel": self.kernel,
            "line": self.line,
            "message": self.message,
        }


@dataclass(frozen=True)
class OccupancyEntry:
    """Predicted occupancy for one ``(block_dim, DeviceSpec)`` pair."""

    block_dim: int
    spec: str
    shared_bytes: int
    registers_per_thread: int
    feasible: bool
    active_blocks_per_sm: int = 0
    active_warps_per_sm: int = 0
    max_warps_per_sm: int = 0
    fraction: float = 0.0
    limiter: str = ""

    def as_dict(self) -> dict:
        return {
            "block_dim": self.block_dim,
            "spec": self.spec,
            "shared_bytes": self.shared_bytes,
            "registers_per_thread": self.registers_per_thread,
            "feasible": self.feasible,
            "active_blocks_per_sm": self.active_blocks_per_sm,
            "active_warps_per_sm": self.active_warps_per_sm,
            "max_warps_per_sm": self.max_warps_per_sm,
            "fraction": round(self.fraction, 6),
            "limiter": self.limiter,
        }


@dataclass(frozen=True)
class SharedDecl:
    """One ``ctx.shared(name, shape, dtype)`` declaration site."""

    name: str
    shape: str  #: unparsed shape expression
    dtype: str
    itemsize: Optional[int]
    line: int

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "shape": self.shape,
            "dtype": self.dtype,
            "itemsize": self.itemsize,
            "line": self.line,
        }


@dataclass
class KernelReport:
    """Full static-analysis result for one kernel."""

    kernel: str
    has_device_code: bool
    barriers: int
    registers_per_thread: int
    register_proxy: Optional[int]
    shared_decls: list[SharedDecl]
    static_shared_bytes: dict[int, Optional[int]]
    declared_shared_bytes: dict[int, int]
    occupancy: list[OccupancyEntry]
    findings: list[Finding] = field(default_factory=list)
    #: KC006 weighted max-live register estimate (None = no device code)
    register_estimate: Optional[int] = None
    #: KC005/KC003 per-access table (AccessRecord dicts)
    accesses: list[dict] = field(default_factory=list)
    #: KC007 symbolic cost model report (None = no device code)
    cost: Optional[dict] = None

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warn"]

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "has_device_code": self.has_device_code,
            "barriers": self.barriers,
            "registers_per_thread": self.registers_per_thread,
            "register_proxy": self.register_proxy,
            "shared_decls": [d.as_dict() for d in self.shared_decls],
            "static_shared_bytes": {
                str(k): v for k, v in self.static_shared_bytes.items()
            },
            "declared_shared_bytes": {
                str(k): v for k, v in self.declared_shared_bytes.items()
            },
            "occupancy": [e.as_dict() for e in self.occupancy],
            "findings": [f.as_dict() for f in self.findings],
            "register_estimate": self.register_estimate,
            "accesses": self.accesses,
            "cost": self.cost,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


# ======================================================================
# thread-dependence ("taint") dataflow values
# ======================================================================
@dataclass(frozen=True)
class Val:
    """Abstract value of an expression for one thread.

    ``tid`` is the coefficient of the thread id if the value is affine
    in it with a compile-time-constant coefficient (``None`` = unknown
    or non-affine); ``uniform`` means identical across all threads of a
    block; ``pure`` means built only from the thread id and literals;
    ``const`` is a known compile-time integer value.
    """

    tid: Optional[int]
    uniform: bool
    pure: bool
    const: Optional[int] = None

    @staticmethod
    def constant(k: Optional[int] = None) -> "Val":
        return Val(0, True, True, k)

    @staticmethod
    def uniform_sym() -> "Val":
        return Val(0, True, False, None)

    @staticmethod
    def thread_id() -> "Val":
        return Val(1, False, True, None)

    @staticmethod
    def data() -> "Val":
        return Val(None, False, False, None)

    def join(self, other: "Val") -> "Val":
        return Val(
            self.tid if self.tid == other.tid else None,
            self.uniform and other.uniform,
            self.pure and other.pure,
            self.const if self.const == other.const else None,
        )


def _join_all(vals: Iterable[Val]) -> Val:
    out = Val.constant()
    for v in vals:
        out = Val(
            0 if (out.tid == 0 and v.tid == 0) else None,
            out.uniform and v.uniform,
            out.pure and v.pure,
            None,
        )
    return out


#: ``ctx`` attributes that are uniform within a block
_CTX_UNIFORM = {"block_idx", "block_dim", "grid_dim"}
#: ``ctx`` attributes carrying the thread id
_CTX_THREAD = {"thread_idx", "global_id"}
#: builtins that preserve the numeric value (and so its affinity)
_VALUE_PRESERVING = {"int", "float"}
#: builtins that are uniform-preserving but destroy affinity
_UNIFORMISH_CALLS = {"min", "max", "abs", "round", "len", "range", "bool"}


class _DeviceFn:
    """Parsed device code plus its dataflow environment."""

    def __init__(self, fn: ast.FunctionDef):
        self.fn = fn
        arg_names = [a.arg for a in (*fn.args.posonlyargs, *fn.args.args)]
        kw_names = [a.arg for a in fn.args.kwonlyargs]
        self.ctx_name = "ctx" if "ctx" in arg_names + kw_names else (
            arg_names[1] if len(arg_names) > 1 else (arg_names[0] if arg_names else "ctx")
        )
        self.params = {
            n for n in (*arg_names, *kw_names) if n not in ("self", self.ctx_name)
        }
        self.env: dict[str, Val] = {}
        self.shared: dict[str, SharedDecl] = {}  # local var name -> decl
        self.shared_shapes: dict[str, ast.expr] = {}  # var name -> shape expr
        self.blockdim_aliases: set[str] = set()
        self.assigned: set[str] = set()
        self.cfg: CFG = build_cfg(fn)
        self._fixpoint()

    # -- environment construction --------------------------------------
    def _fixpoint(self) -> None:
        for _ in range(10):
            before = dict(self.env)
            self._walk_body(self.fn.body)
            if self.env == before:
                break

    def _walk_body(self, stmts: Sequence[ast.stmt]) -> None:
        for s in stmts:
            self._walk_stmt(s)

    def _walk_stmt(self, s: ast.stmt) -> None:
        if isinstance(s, ast.Assign):
            self._assign(s.targets, s.value)
        elif isinstance(s, ast.AnnAssign):
            if s.value is not None:
                self._assign([s.target], s.value)
        elif isinstance(s, ast.AugAssign):
            if isinstance(s.target, ast.Name):
                combined = Val(None, False, False, None)
                old = self.env.get(s.target.id)
                v = self.eval(s.value)
                if old is not None:
                    combined = Val(
                        None
                        if old.tid is None or v.tid is None
                        else old.tid + v.tid
                        if isinstance(s.op, ast.Add)
                        else None,
                        old.uniform and v.uniform,
                        old.pure and v.pure,
                        None,
                    )
                self._bind(s.target.id, combined)
        elif isinstance(s, ast.For):
            it = self.eval(s.iter)
            v = (
                Val(0, True, it.pure, None)
                if it.uniform
                else Val.data()
            )
            for t in self._target_names(s.target):
                self._bind(t, v)
            self._walk_body(s.body)
            self._walk_body(s.orelse)
        elif isinstance(s, ast.While):
            self._walk_body(s.body)
            self._walk_body(s.orelse)
        elif isinstance(s, ast.If):
            self._walk_body(s.body)
            self._walk_body(s.orelse)
        elif isinstance(s, ast.With):
            self._walk_body(s.body)
        elif isinstance(s, ast.Try):
            self._walk_body(s.body)
            for h in s.handlers:
                self._walk_body(h.body)
            self._walk_body(s.orelse)
            self._walk_body(s.finalbody)

    @staticmethod
    def _target_names(target: ast.expr) -> list[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            out: list[str] = []
            for e in target.elts:
                out.extend(_DeviceFn._target_names(e))
            return out
        return []

    def _bind(self, name: str, v: Val) -> None:
        self.assigned.add(name)
        old = self.env.get(name)
        self.env[name] = v if old is None else old.join(v)

    def _assign(self, targets: list[ast.expr], value: ast.expr) -> None:
        # ctx.shared(...) produces a block-shared buffer handle
        if self._is_ctx_call(value, "shared") and len(targets) == 1:
            t = targets[0]
            if isinstance(t, ast.Name):
                decl = self._shared_decl(value)
                self.shared[t.id] = decl
                self.shared_shapes[t.id] = (
                    value.args[1] if len(value.args) > 1 else ast.Constant(0)
                )
                self._bind(t.id, Val.uniform_sym())
            return
        # track aliases of ctx.block_dim for shape evaluation
        if (
            len(targets) == 1
            and isinstance(targets[0], ast.Name)
            and isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == self.ctx_name
            and value.attr == "block_dim"
        ):
            self.blockdim_aliases.add(targets[0].id)
        for t in targets:
            if isinstance(t, (ast.Tuple, ast.List)) and isinstance(
                value, (ast.Tuple, ast.List)
            ) and len(t.elts) == len(value.elts):
                for te, ve in zip(t.elts, value.elts, strict=True):
                    self._assign([te], ve)
            else:
                v = self.eval(value)
                for n in self._target_names(t):
                    self._bind(n, v)

    def _is_ctx_call(self, node: ast.expr, attr: str) -> TypeGuard[ast.Call]:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == attr
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == self.ctx_name
        )

    def _shared_decl(self, call: ast.Call) -> SharedDecl:
        name = "?"
        if call.args and isinstance(call.args[0], ast.Constant):
            name = str(call.args[0].value)
        shape = ast.unparse(call.args[1]) if len(call.args) > 1 else "?"
        dtype_expr = call.args[2] if len(call.args) > 2 else None
        dtype_name, itemsize = _resolve_dtype(dtype_expr)
        return SharedDecl(
            name=name,
            shape=shape,
            dtype=dtype_name,
            itemsize=itemsize,
            line=call.lineno,
        )

    # -- expression evaluation -----------------------------------------
    def eval(self, node: Optional[ast.expr]) -> Val:
        if node is None:
            return Val.constant()
        if isinstance(node, ast.Constant):
            k = node.value if isinstance(node.value, (int, bool)) else None
            return Val.constant(int(k) if k is not None else None)
        if isinstance(node, ast.Name):
            if node.id == self.ctx_name:
                return Val.uniform_sym()
            if node.id in self.env:
                return self.env[node.id]
            if node.id in self.params:
                return Val.uniform_sym()  # launch args are per-grid
            return Val.uniform_sym()  # builtins / module globals
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == self.ctx_name:
                if node.attr in _CTX_THREAD:
                    # global_id mixes in uniform block terms → not pure
                    pure = node.attr == "thread_idx"
                    return Val(1, False, pure, None)
                if node.attr in _CTX_UNIFORM:
                    return Val.uniform_sym()
                return Val.uniform_sym()
            base = self.eval(node.value)
            return Val(0 if base.uniform else None, base.uniform, False, None)
        if isinstance(node, ast.Subscript):
            idx = self.eval(node.slice)
            if idx.uniform:
                return Val.uniform_sym()
            return Val.data()
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.UnaryOp):
            v = self.eval(node.operand)
            if isinstance(node.op, ast.USub):
                return Val(
                    -v.tid if v.tid is not None else None,
                    v.uniform,
                    v.pure,
                    -v.const if v.const is not None else None,
                )
            if isinstance(node.op, ast.Not):
                return Val(0 if v.uniform else None, v.uniform, v.pure, None)
            return Val(v.tid, v.uniform, v.pure, None)
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            ops = (
                [node.left, *node.comparators]
                if isinstance(node, ast.Compare)
                else node.values
            )
            return _join_all(self.eval(o) for o in ops)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.IfExp):
            joined = self.eval(node.body).join(self.eval(node.orelse))
            test = self.eval(node.test)
            if not test.uniform:
                return Val(None, False, joined.pure and test.pure, None)
            return joined
        if isinstance(node, (ast.Tuple, ast.List)):
            return _join_all(self.eval(e) for e in node.elts)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        return Val.data()

    def _binop(self, node: ast.BinOp) -> Val:
        a, b = self.eval(node.left), self.eval(node.right)
        uniform = a.uniform and b.uniform
        pure = a.pure and b.pure
        if isinstance(node.op, (ast.Add, ast.Sub)):
            sign = 1 if isinstance(node.op, ast.Add) else -1
            tid = (
                a.tid + sign * b.tid
                if a.tid is not None and b.tid is not None
                else None
            )
            const = (
                a.const + sign * b.const
                if a.const is not None and b.const is not None
                else None
            )
            return Val(tid, uniform, pure, const)
        if isinstance(node.op, ast.Mult):
            if a.const is not None and b.tid is not None:
                return Val(
                    a.const * b.tid,
                    uniform,
                    pure,
                    a.const * b.const if b.const is not None else None,
                )
            if b.const is not None and a.tid is not None:
                return Val(
                    b.const * a.tid,
                    uniform,
                    pure,
                    b.const * a.const if a.const is not None else None,
                )
            if uniform:
                return Val(0, True, pure, None)
            return Val(None, False, pure, None)
        # div / floordiv / mod / pow / shifts: non-affine in the thread id
        if uniform:
            return Val(0, True, pure, None)
        return Val(None, False, pure, None)

    def _call(self, node: ast.Call) -> Val:
        fname = None
        if isinstance(node.func, ast.Name):
            fname = node.func.id
        elif isinstance(node.func, ast.Attribute):
            fname = node.func.attr
        args = [self.eval(a) for a in node.args]
        if fname in _VALUE_PRESERVING and len(args) == 1:
            return args[0]
        if fname in _UNIFORMISH_CALLS:
            uniform = all(a.uniform for a in args)
            return Val(
                0 if uniform else None,
                uniform,
                all(a.pure for a in args),
                None,
            )
        if self._is_ctx_call(node, "shared") or fname == "syncthreads":
            return Val.uniform_sym()
        if fname in ("atomic_add", "result_append"):
            return Val.data()
        uniform = all(a.uniform for a in args)
        return Val(0 if uniform else None, uniform, False, None)


def _resolve_dtype(node: Optional[ast.expr]) -> tuple[str, Optional[int]]:
    """Best-effort dtype name + itemsize from a dtype expression."""
    if node is None:
        return "?", None
    name: Optional[str] = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    if name is None:
        return ast.unparse(node), None
    try:
        return name, int(np.dtype(name).itemsize)
    except TypeError:
        return name, None


# ======================================================================
# access extraction
# ======================================================================
@dataclass(frozen=True)
class _Access:
    node_id: int
    buffer: str  #: shared-buffer name or global param name
    shared: bool
    write: bool
    idx_dump: str
    idx_text: str
    idx: Val
    guard: Optional[str]  #: dump of a single-thread pin (``tid == 0``), if any
    line: int


def _node_exprs(node: CFGNode) -> list[ast.expr]:
    s = node.stmt
    if node.kind == "branch":
        return [node.test] if node.test is not None else []
    if node.kind == "loop":
        if isinstance(s, ast.For):
            return [s.iter]
        return [node.test] if node.test is not None else []
    if isinstance(s, ast.Assign):
        return [*s.targets, s.value]
    if isinstance(s, ast.AugAssign):
        return [s.target, s.value]
    if isinstance(s, ast.AnnAssign):
        return [e for e in (s.target, s.value) if e is not None]
    if isinstance(s, ast.Expr):
        return [s.value]
    if isinstance(s, ast.Return):
        return [s.value] if s.value is not None else []
    if isinstance(s, ast.With):
        return [i.context_expr for i in s.items]
    return []


def _single_thread_guard(df: _DeviceFn, node: CFGNode) -> Optional[str]:
    """Dump of an enclosing ``tid == <uniform>`` pin, if one exists."""
    for frame in node.stack:
        if frame.kind != "if":
            continue
        test = df.cfg.node(frame.node_id).test
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            continue
        if not isinstance(test.ops[0], ast.Eq):
            continue
        left, right = df.eval(test.left), df.eval(test.comparators[0])
        if (left.tid == 1 and right.uniform) or (right.tid == 1 and left.uniform):
            return ast.dump(test)
    return None


def _extract_accesses(df: _DeviceFn) -> list[_Access]:
    accesses: list[_Access] = []
    aug_targets: set[int] = set()
    for node in df.cfg.statements():
        if isinstance(node.stmt, ast.AugAssign) and isinstance(
            node.stmt.target, ast.Subscript
        ):
            aug_targets.add(id(node.stmt.target))
        guard = _single_thread_guard(df, node)
        for expr in _node_exprs(node):
            for sub in ast.walk(expr):
                if not isinstance(sub, ast.Subscript):
                    continue
                if not isinstance(sub.value, ast.Name):
                    continue
                base = sub.value.id
                is_shared = base in df.shared
                if not is_shared and base not in df.params:
                    continue
                buffer = df.shared[base].name if is_shared else base
                idx = df.eval(sub.slice)
                writes = [isinstance(sub.ctx, ast.Store)]
                if id(sub) in aug_targets:
                    writes = [True, False]  # read-modify-write
                for w in writes:
                    accesses.append(
                        _Access(
                            node_id=node.id,
                            buffer=buffer,
                            shared=is_shared,
                            write=w,
                            idx_dump=ast.dump(sub.slice),
                            idx_text=ast.unparse(sub.slice),
                            idx=idx,
                            guard=guard,
                            line=sub.lineno,
                        )
                    )
    return accesses


# ======================================================================
# passes KC001–KC003 (device-code passes)
# ======================================================================
def _pass_kc001(df: _DeviceFn, kernel_name: str) -> list[Finding]:
    findings: list[Finding] = []
    cfg = df.cfg
    barriers = cfg.barriers()
    seen_loops: set[int] = set()
    seen_branches: set[int] = set()

    def barrier_count_in_arm(branch_id: int, arm: str) -> int:
        return sum(
            1
            for b in barriers
            if any(
                fr.kind == "if" and fr.node_id == branch_id and fr.arm == arm
                for fr in b.stack
            )
        )

    for b in barriers:
        for frame in b.stack:
            ctrl = cfg.node(frame.node_id)
            tainted = not df.eval(ctrl.test).uniform
            if not tainted:
                continue
            if frame.kind == "loop" and frame.node_id not in seen_loops:
                seen_loops.add(frame.node_id)
                findings.append(
                    Finding(
                        "KC001",
                        "error",
                        kernel_name,
                        b.line,
                        "barrier inside a loop with thread-dependent trip "
                        f"count (loop at line {ctrl.line}: "
                        f"'{ast.unparse(ctrl.test) if ctrl.test else '?'}'); "
                        "threads may execute different barrier sequences",
                    )
                )
            elif frame.kind == "if" and frame.node_id not in seen_branches:
                then_n = barrier_count_in_arm(frame.node_id, "then")
                else_n = barrier_count_in_arm(frame.node_id, "else")
                if then_n != else_n:
                    seen_branches.add(frame.node_id)
                    findings.append(
                        Finding(
                            "KC001",
                            "error",
                            kernel_name,
                            b.line,
                            "barrier under thread-dependent branch at line "
                            f"{ctrl.line} "
                            f"('{ast.unparse(ctrl.test) if ctrl.test else '?'}') "
                            f"without a matching barrier on the sibling path "
                            f"({then_n} vs {else_n})",
                        )
                    )

    # thread-dependent early return that skips a downstream barrier
    for node in cfg.statements():
        if not isinstance(node.stmt, ast.Return):
            continue
        for frame in node.stack:
            if frame.kind != "if":
                continue
            branch = cfg.node(frame.node_id)
            if df.eval(branch.test).uniform:
                continue
            divergent = [
                b
                for b in barriers
                if not any(
                    fr.kind == "if"
                    and fr.node_id == frame.node_id
                    and fr.arm == frame.arm
                    for fr in b.stack
                )
                and b.id in _reachable(cfg, frame.node_id)
            ]
            if divergent:
                findings.append(
                    Finding(
                        "KC001",
                        "error",
                        kernel_name,
                        node.line,
                        "thread-dependent early return (branch at line "
                        f"{branch.line}: "
                        f"'{ast.unparse(branch.test) if branch.test else '?'}') "
                        f"while block-mates still reach the barrier at line "
                        f"{divergent[0].line}",
                    )
                )
                break
    return findings


def _reachable(cfg: CFG, src: int) -> set[int]:
    seen: set[int] = set()
    work = list(cfg.node(src).succs)
    while work:
        nid = work.pop()
        if nid in seen:
            continue
        seen.add(nid)
        work.extend(cfg.node(nid).succs)
    return seen


def _pass_kc002(df: _DeviceFn, kernel_name: str) -> list[Finding]:
    findings: list[Finding] = []
    accesses = [a for a in _extract_accesses(df) if a.shared]
    if not accesses:
        return findings
    reach = {
        nid: df.cfg.reachable_without_barrier(nid)
        for nid in {a.node_id for a in accesses}
    }
    reported: set[tuple] = set()

    def report(key: tuple, line: int, message: str) -> None:
        if key in reported:
            return
        reported.add(key)
        findings.append(Finding("KC002", "error", kernel_name, line, message))

    # a uniform-index write performed by every thread races with itself
    for a in accesses:
        if a.write and a.idx.uniform and a.guard is None:
            report(
                ("self", a.buffer, a.line),
                a.line,
                f"all threads of the block write shared buffer "
                f"'{a.buffer}[{a.idx_text}]' (same slot, no single-thread "
                f"guard)",
            )

    def conflict(a: _Access, b: _Access) -> bool:
        if not (a.write or b.write):
            return False
        if a.guard is not None and a.guard == b.guard:
            return False  # both pinned to the same single thread
        if a.idx_dump == b.idx_dump and not a.idx.uniform:
            return False  # each thread touches its own slot in both
        if (
            a.idx.const is not None
            and b.idx.const is not None
            and a.idx.const != b.idx.const
        ):
            return False  # provably disjoint constant slots
        if a.idx_dump == b.idx_dump and a.idx.uniform and a.guard == b.guard:
            # same uniform slot: racy unless single-thread (handled above)
            return a.guard is None
        return True

    for a in accesses:
        for b in accesses:
            if a.buffer != b.buffer:
                continue
            same_node = a.node_id == b.node_id and a is not b
            connected = b.node_id in reach[a.node_id] or same_node
            if not connected:
                continue
            if not conflict(a, b):
                continue
            lo, hi = sorted((a.line, b.line))
            report(
                ("pair", a.buffer, lo, hi, a.idx_dump, b.idx_dump),
                hi,
                f"shared buffer '{a.buffer}': "
                f"{'write' if a.write else 'read'} of [{a.idx_text}] at line "
                f"{a.line} and {'write' if b.write else 'read'} of "
                f"[{b.idx_text}] at line {b.line} on the same barrier-free "
                f"path segment",
            )
    return findings


def _pass_kc003(df: _DeviceFn, kernel_name: str) -> list[Finding]:
    findings: list[Finding] = []
    seen: set[tuple] = set()
    for a in _extract_accesses(df):
        if a.shared:
            continue
        key = (a.buffer, a.idx_dump, a.write)
        if key in seen:
            continue
        seen.add(key)
        kind = "store to" if a.write else "load from"
        if a.idx.tid is not None and abs(a.idx.tid) > 1:
            findings.append(
                Finding(
                    "KC003",
                    "warn",
                    kernel_name,
                    a.line,
                    f"uncoalesced {kind} global buffer "
                    f"'{a.buffer}[{a.idx_text}]': affine in the thread id "
                    f"with stride {a.idx.tid} (warp touches "
                    f"{abs(a.idx.tid)}x the cache lines)",
                )
            )
        elif a.idx.tid is None and a.idx.pure and not a.idx.uniform:
            findings.append(
                Finding(
                    "KC003",
                    "warn",
                    kernel_name,
                    a.line,
                    f"uncoalesced {kind} global buffer "
                    f"'{a.buffer}[{a.idx_text}]': non-affine in the thread "
                    f"id (stride unbounded)",
                )
            )
    return findings


# ======================================================================
# KC005: abstract-interpretation bounds proofs
# ======================================================================
def _pass_kc005(
    df: _DeviceFn,
    kernel_name: str,
    invariants: Optional[KernelInvariants],
) -> tuple[list[Finding], list[AccessRecord], Optional[AbsintResult]]:
    """Run the abstract interpreter; unproved accesses become findings.

    Shared-buffer accesses are always checked against their declared
    shapes.  Global accesses are only *provable* when the kernel ships a
    ``value_invariants()`` contract; without one they are recorded as
    ``assumed`` and never fire.
    """
    try:
        result = interpret_kernel(df.fn, invariants, df.cfg)
    except ContractError as exc:
        return (
            [
                Finding(
                    "KC005",
                    "error",
                    kernel_name,
                    0,
                    f"unusable value_invariants() contract: {exc}",
                )
            ],
            [],
            None,
        )
    findings = [
        Finding(
            "KC005",
            "error",
            kernel_name,
            a.line,
            f"cannot prove {'store to' if a.write else 'load from'} "
            f"{'shared' if a.shared else 'global'} buffer "
            f"'{a.buffer}[{a.index}]' in bounds: {a.detail} "
            f"(index interval {a.interval})",
        )
        for a in result.unproved()
    ]
    return findings, result.accesses, result


# ======================================================================
# KC006: liveness-based register estimate
# ======================================================================
def _register_estimate(df: _DeviceFn) -> int:
    """Weighted max-live register estimate over the statement CFG.

    Counts only kernel *locals* — launch parameters live in constant
    memory, ``ctx`` is the machine, and shared-buffer handles are
    addresses into shared storage, none of which occupy a per-thread
    register.  Loop-carried values (live across a back edge and
    redefined in the loop) weigh double: they must stay resident across
    a whole iteration, exactly the values a real compiler cannot
    rematerialize.  The +4 matches the old proxy's fixed overhead
    (address/predicate scratch).
    """
    lv = compute_liveness(df.cfg)
    locals_: set[str] = set()
    for d in lv.defs.values():
        locals_ |= d
    locals_ -= set(df.params)
    locals_ -= set(df.shared)
    locals_.discard(df.ctx_name)
    locals_.discard("self")
    best = 0
    for n in df.cfg.nodes:
        live = (lv.live_in[n.id] | lv.defs[n.id]) & locals_
        best = max(
            best, sum(2 if v in lv.loop_carried else 1 for v in live)
        )
    return 4 + best


def _pass_kc006(
    df: _DeviceFn, kernel_name: str, declared_registers: int
) -> tuple[list[Finding], int]:
    estimate = _register_estimate(df)
    findings: list[Finding] = []
    if estimate > declared_registers:
        findings.append(
            Finding(
                "KC006",
                "warn",
                kernel_name,
                df.fn.body[0].lineno if df.fn.body else 0,
                f"live-range register estimate {estimate} exceeds the "
                f"declared registers_per_thread={declared_registers}; "
                f"the occupancy table is optimistic",
            )
        )
    return findings, estimate


# ======================================================================
# KC007: symbolic static cost model
# ======================================================================
def _pass_kc007(
    df: _DeviceFn, kernel: Kernel, result: Optional[AbsintResult]
) -> tuple[list[Finding], Optional[KernelCostModel]]:
    """Derive the symbolic cost model and lift its issues into findings.

    Unbounded loops (no trip bound and no contract estimate) are
    ``error``; a ``cost_contract()`` that declares a counter bound below
    the derived worst case — a lying contract — is ``warn``.  Skipped
    when KC005 already rejected the value contract (no interpretation
    to cost).
    """
    if result is None:
        return [], None
    try:
        contract = kernel.cost_contract()
    except ValueError as exc:
        return (
            [
                Finding(
                    "KC007",
                    "warn",
                    kernel.name,
                    0,
                    f"unusable cost_contract(): {exc}",
                )
            ],
            None,
        )
    cost = derive_cost_from_result(
        kernel_name=kernel.name,
        fn=df.fn,
        cfg=df.cfg,
        result=result,
        contract=contract,
        registers_per_thread=kernel.registers_per_thread,
        kernel=kernel,
    )
    findings = [
        Finding("KC007", issue.severity, kernel.name, issue.line, issue.message)
        for issue in cost.issues
    ]
    return findings, cost


# ======================================================================
# KC004: static shared bytes + occupancy
# ======================================================================
def _eval_static_int(
    node: ast.expr, df: Optional[_DeviceFn], block_dim: int
) -> Optional[int]:
    """Numeric value of a shape term with ``block_dim`` bound."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return int(node.value)
    if isinstance(node, ast.Name):
        if df is not None and node.id in df.blockdim_aliases:
            return block_dim
        return None
    if isinstance(node, ast.Attribute):
        if (
            df is not None
            and isinstance(node.value, ast.Name)
            and node.value.id == df.ctx_name
            and node.attr == "block_dim"
        ):
            return block_dim
        return None
    if isinstance(node, ast.BinOp):
        a = _eval_static_int(node.left, df, block_dim)
        b = _eval_static_int(node.right, df, block_dim)
        if a is None or b is None:
            return None
        if isinstance(node.op, ast.Add):
            return a + b
        if isinstance(node.op, ast.Sub):
            return a - b
        if isinstance(node.op, ast.Mult):
            return a * b
        if isinstance(node.op, ast.FloorDiv) and b != 0:
            return a // b
        return None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        v = _eval_static_int(node.operand, df, block_dim)
        return -v if v is not None else None
    return None


def _static_shared_bytes(df: _DeviceFn, block_dim: int) -> Optional[int]:
    """Total ``ctx.shared`` footprint at ``block_dim``, or None if any
    declaration's shape cannot be evaluated statically."""
    total = 0
    for var, decl in df.shared.items():
        if decl.itemsize is None:
            return None
        shape_expr = df.shared_shapes[var]
        dims = (
            list(shape_expr.elts)
            if isinstance(shape_expr, (ast.Tuple, ast.List))
            else [shape_expr]
        )
        n = 1
        for d in dims:
            v = _eval_static_int(d, df, block_dim)
            if v is None:
                return None
            n *= v
        total += n * decl.itemsize
    return total


def _occupancy_entry(
    kernel: Kernel, block_dim: int, spec: DeviceSpec
) -> tuple[OccupancyEntry, Optional[Finding]]:
    shared_bytes = kernel.shared_mem_per_block(block_dim)
    base = dict(
        block_dim=block_dim,
        spec=spec.name,
        shared_bytes=shared_bytes,
        registers_per_thread=kernel.registers_per_thread,
    )
    try:
        occ = occupancy(
            block_dim,
            limits=OccupancyLimits.for_spec(spec),
            registers_per_thread=kernel.registers_per_thread,
            shared_mem_per_block_bytes=shared_bytes,
        )
    except ValueError as exc:
        return (
            OccupancyEntry(feasible=False, limiter="infeasible", **base),
            Finding(
                "KC004",
                "error",
                kernel.name,
                0,
                f"launch configuration block_dim={block_dim} on {spec.name} "
                f"is infeasible: {exc}",
            ),
        )
    return (
        OccupancyEntry(
            feasible=True,
            active_blocks_per_sm=occ.active_blocks_per_sm,
            active_warps_per_sm=occ.active_warps_per_sm,
            max_warps_per_sm=occ.max_warps_per_sm,
            fraction=occ.fraction,
            limiter=occ.limiter,
            **base,
        ),
        None,
    )


# ======================================================================
# kernel-level entry points
# ======================================================================
def _device_fn_of(kernel: Kernel) -> Optional[_DeviceFn]:
    """Parse a kernel's ``device_code`` override, if it has one."""
    if type(kernel).device_code is Kernel.device_code:
        return None
    source = textwrap.dedent(inspect.getsource(type(kernel).device_code))
    module = ast.parse(source)
    fn = next(n for n in module.body if isinstance(n, ast.FunctionDef))
    return _DeviceFn(fn)


def _register_proxy(df: _DeviceFn) -> int:
    """Crude per-thread register-pressure proxy: locals + arguments
    plus a fixed overhead, as a real compiler would spill around."""
    return 4 + len(df.assigned) + len(df.params)


def analyze_kernel(
    kernel: Kernel,
    *,
    block_dims: Sequence[int] = DEFAULT_BLOCK_DIMS,
    specs: Optional[Sequence[DeviceSpec]] = None,
) -> KernelReport:
    """Run all four kernelcheck passes over one kernel."""
    specs = list(specs) if specs is not None else [DeviceSpec()]
    df = _device_fn_of(kernel)
    findings: list[Finding] = []
    declared = {bd: kernel.shared_mem_per_block(bd) for bd in block_dims}
    static: dict[int, Optional[int]] = dict.fromkeys(block_dims)
    shared_decls: list[SharedDecl] = []
    barriers = 0
    proxy: Optional[int] = None
    estimate: Optional[int] = None
    accesses: list[AccessRecord] = []
    cost: Optional[KernelCostModel] = None

    if df is not None:
        barriers = len(df.cfg.barriers())
        shared_decls = list(df.shared.values())
        proxy = _register_proxy(df)
        findings += _pass_kc001(df, kernel.name)
        findings += _pass_kc002(df, kernel.name)
        findings += _pass_kc003(df, kernel.name)
        kc5, accesses, absres = _pass_kc005(
            df, kernel.name, kernel.value_invariants()
        )
        findings += kc5
        kc6, estimate = _pass_kc006(df, kernel.name, kernel.registers_per_thread)
        findings += kc6
        kc7, cost = _pass_kc007(df, kernel, absres)
        findings += kc7
        for bd in block_dims:
            extracted = _static_shared_bytes(df, bd)
            static[bd] = extracted
            if extracted is not None and extracted > declared[bd]:
                findings.append(
                    Finding(
                        "KC004",
                        "error",
                        kernel.name,
                        shared_decls[0].line if shared_decls else 0,
                        f"device code allocates {extracted} B of shared "
                        f"memory at block_dim={bd} but "
                        f"shared_mem_per_block declares only "
                        f"{declared[bd]} B — occupancy prediction and the "
                        f"runtime budget check disagree",
                    )
                )

    entries: list[OccupancyEntry] = []
    for spec in specs:
        for bd in block_dims:
            entry, finding = _occupancy_entry(kernel, bd, spec)
            entries.append(entry)
            if finding is not None:
                findings.append(finding)

    return KernelReport(
        kernel=kernel.name,
        has_device_code=df is not None,
        barriers=barriers,
        registers_per_thread=kernel.registers_per_thread,
        register_proxy=proxy,
        shared_decls=shared_decls,
        static_shared_bytes=static,
        declared_shared_bytes=declared,
        occupancy=entries,
        findings=findings,
        register_estimate=estimate,
        accesses=[a.to_dict() for a in accesses],
        cost=cost.to_dict() if cost is not None else None,
    )


def analyze_device_source(
    source: str,
    kernel_name: str = "<source>",
    *,
    invariants: Optional[KernelInvariants] = None,
    declared_registers: Optional[int] = None,
) -> list[Finding]:
    """Run the device-code passes (KC001–KC003, KC005, KC006) over raw
    source.

    The source must contain one function definition (the device code).
    ``invariants`` feeds KC005's bounds proofs; KC006 only fires when a
    ``declared_registers`` budget is given to check the estimate
    against.  Used by the seeded-violation corpus and the
    no-false-positive property tests.
    """
    module = ast.parse(textwrap.dedent(source))
    fn = next(n for n in module.body if isinstance(n, ast.FunctionDef))
    df = _DeviceFn(fn)
    findings = (
        _pass_kc001(df, kernel_name)
        + _pass_kc002(df, kernel_name)
        + _pass_kc003(df, kernel_name)
        + _pass_kc005(df, kernel_name, invariants)[0]
    )
    if declared_registers is not None:
        findings += _pass_kc006(df, kernel_name, declared_registers)[0]
    return findings


def analyze_shipped(
    *,
    block_dims: Sequence[int] = DEFAULT_BLOCK_DIMS,
    specs: Optional[Sequence[DeviceSpec]] = None,
) -> list[KernelReport]:
    """Analyze every registered (shipped) kernel."""
    from repro.kernels import shipped_kernels

    return [
        analyze_kernel(k, block_dims=block_dims, specs=specs)
        for k in shipped_kernels()
    ]


# ======================================================================
# static occupancy table → hybrid_select tie-break hint
# ======================================================================
def static_occupancy_table(
    kernel: Kernel,
    *,
    block_dims: Sequence[int] = DEFAULT_BLOCK_DIMS,
    spec: Optional[DeviceSpec] = None,
) -> dict[int, OccupancyEntry]:
    """Predicted occupancy per block_dim for one kernel on one spec."""
    spec = spec or DeviceSpec()
    return {bd: _occupancy_entry(kernel, bd, spec)[0] for bd in block_dims}


def ties_dense_hint(
    *,
    block_dims: Sequence[int] = (32, 64, 128, 256, 512, 1024),
    spec: Optional[DeviceSpec] = None,
) -> dict[int, bool]:
    """Tie-break hint for :class:`~repro.kernels.HybridSelectKernel`.

    For each block_dim: ``True`` when the shared-memory path's static
    occupancy is at least the global path's, so cells sitting exactly
    on the density threshold are worth a shared-memory block; ``False``
    sends tie cells to the global path, whose occupancy the shared
    footprint would not depress.
    """
    from repro.kernels import GPUCalcGlobal, GPUCalcShared

    shared_table = static_occupancy_table(
        GPUCalcShared(), block_dims=block_dims, spec=spec
    )
    global_table = static_occupancy_table(
        GPUCalcGlobal(), block_dims=block_dims, spec=spec
    )
    return {
        bd: shared_table[bd].feasible
        and shared_table[bd].fraction >= global_table[bd].fraction
        for bd in block_dims
    }


# ======================================================================
# CLI shim (the primary front end is `repro analyze kernels`)
# ======================================================================
def worst_severity(reports: Iterable[KernelReport]) -> Optional[str]:
    worst: Optional[str] = None
    for r in reports:
        for f in r.findings:
            if worst is None or SEVERITY_ORDER[f.severity] > SEVERITY_ORDER[worst]:
                worst = f.severity
    return worst


def render_text(reports: Sequence[KernelReport]) -> str:
    lines: list[str] = []
    for r in reports:
        occ = {
            (e.block_dim, e.spec): e for e in r.occupancy
        }
        occ_bits = ", ".join(
            f"bd={bd}: {e.fraction:.3f} ({e.limiter})" if e.feasible else f"bd={bd}: infeasible"
            for (bd, _), e in occ.items()
        )
        lines.append(
            f"{r.kernel}: "
            f"{'device code' if r.has_device_code else 'vector-only'}, "
            f"{r.barriers} barrier(s), "
            f"{len(r.shared_decls)} shared buffer(s); occupancy {occ_bits}"
        )
        if r.has_device_code:
            proved = sum(1 for a in r.accesses if a["status"] == "proved")
            lines.append(
                f"  accesses: {proved}/{len(r.accesses)} proved in bounds; "
                f"registers: estimate {r.register_estimate} "
                f"(declared {r.registers_per_thread})"
            )
        if r.cost is not None:
            state = "bounded" if r.cost["bounded"] else "UNBOUNDED"
            busy = {
                c: b
                for c, b in r.cost["per_thread_bounds"].items()
                if b not in (None, "0")
            }
            bits = ", ".join(f"{c} <= {b}" for c, b in sorted(busy.items()))
            lines.append(f"  cost (KC007): {state}; per-thread {bits or 'zero'}")
        for f in r.findings:
            lines.append(f"  {f.render()}")
        if not r.findings:
            lines.append("  findings: none")
    n = sum(len(r.findings) for r in reports)
    lines.append(
        f"kernelcheck: {len(reports)} kernel(s), {n} finding(s)"
        if n
        else f"kernelcheck: {len(reports)} kernel(s), clean"
    )
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="kernelcheck",
        description="static verification of simulated-GPU device kernels",
    )
    parser.add_argument("--format", choices=["text", "json"], default="text")
    parser.add_argument(
        "--fail-on",
        choices=["warn", "error"],
        default="error",
        help="exit non-zero when findings at/above this severity exist",
    )
    parser.add_argument(
        "--block-dims", type=int, nargs="+", default=list(DEFAULT_BLOCK_DIMS)
    )
    args = parser.parse_args(argv)
    reports = analyze_shipped(block_dims=tuple(args.block_dims))
    if args.format == "json":
        print(json.dumps([r.to_dict() for r in reports], indent=2, sort_keys=True))
    else:
        print(render_text(reports))
    worst = worst_severity(reports)
    if worst is None:
        return 0
    if SEVERITY_ORDER[worst] >= SEVERITY_ORDER[args.fail_on]:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
