"""Repo-invariant AST lint for the simulated-GPU codebase.

The gpusanitizer (:mod:`repro.gpusim.sanitizer`) catches violations at
*runtime*; this module statically enforces the coding invariants that
keep the simulation honest.  Three rules:

``GS001`` — device memory is opaque to host code
    Host code outside ``gpusim/`` and ``kernels/`` must not touch
    ``DeviceBuffer.data`` directly; data moves through the device's
    transfer engine (``to_device`` / ``from_device``) so the cost model
    sees every byte.  Names are tracked through assignments from
    ``allocate`` / ``allocate_result_buffer`` / ``alloc_pinned`` /
    ``to_device`` calls and through ``DeviceBuffer`` / ``ResultBuffer``
    / ``PinnedHostBuffer`` annotations.

``GS002`` — no wall clocks inside the simulator
    ``time.time()`` and ``datetime.now()/utcnow()/today()`` inside
    ``gpusim/`` would leak host wall-clock into simulated timestamps;
    monotonic ``time.perf_counter`` (kernel wall-time metering) is
    allowed.

``GS003`` — locks are scoped
    Bare ``.acquire()`` on lock-like names (``lock``, ``_lock``,
    ``mutex``, ...), on names assigned from a ``Lock()`` / ``RLock()``
    / ``Semaphore()`` / ``Condition()`` constructor, or inline on the
    constructor itself (``threading.Lock().acquire()``) is an unwind
    hazard — a raised exception between ``acquire`` and ``release``
    deadlocks the stream workers.  Use ``with lock:``.

``GS004`` — randomness is seeded
    The legacy global-state ``np.random.*`` API (``np.random.rand``,
    ``np.random.shuffle``, ``np.random.seed``, ...) and a bare
    ``np.random.default_rng()`` draw from process-global or
    entropy-seeded state; the sharded-recovery property tests rely on
    bit-reproducible runs, so every random stream must be an explicit
    seeded ``Generator`` / ``SeedSequence``.

``GS005`` — device code stays on the device
    ``device_code`` bodies run per-thread under the SIMT interpreter
    and are the subject of the kernelcheck static passes; a call to a
    host-only API (``print``, ``open``, ``np.argsort``, ...) inside one
    would be invisible to the cost model and unanalyzable statically.
    Only ``ctx.<method>`` calls, ``math.*`` intrinsics, the arithmetic
    builtins (``int``, ``float``, ``min``, ``max``, ``abs``, ``round``,
    ``len``, ``range``, ``bool``, ``enumerate``), and the
    ``kernelapi.device_array`` unwrap helper are allowed.

``GS006`` — device loop bounds are contracted
    A ``for ... in range(...)`` inside ``device_code`` whose bound
    names a kernel parameter the class's ``value_invariants()`` does
    not cover leaves the abstract interpreter no way to bound the trip
    count — the KC007 cost pass will report the kernel unbounded.
    Constant bounds and ``ctx.*`` geometry are exempt, as are classes
    whose ``value_invariants()`` body is a ``raise`` stub (abstract
    bases declare no contract on purpose).

Run as ``python -m repro.analysis.lint [paths...] [--format
text|json|github]`` (exit code 1 on findings); file discovery skips
``__pycache__`` and ``*.egg-info`` artifacts.  CI runs it next to the
``GPUSAN=1`` test job.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

__all__ = ["LintFinding", "lint_source", "run_lint", "main"]

#: directories whose code legitimately touches DeviceBuffer internals
DEVICE_LAYER_DIRS = ("gpusim", "kernels")

#: factory call names whose result is a device-side buffer
_BUFFER_FACTORIES = {
    "allocate",
    "allocate_result_buffer",
    "alloc_pinned",
    "to_device",
}

#: annotations marking a parameter/variable as a device-side buffer
_BUFFER_TYPES = {"DeviceBuffer", "ResultBuffer", "PinnedHostBuffer"}

#: wall-clock calls disallowed inside the simulator
_WALL_CLOCKS = {
    ("time", "time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
}

#: variable-name fragments treated as locks for GS003
_LOCKISH = ("lock", "mutex", "sem", "semaphore", "condition")

#: constructor names whose instances are locks for GS003 (covers
#: ``threading.Lock().acquire()`` and receivers assigned from them)
_LOCK_CONSTRUCTORS = {
    "Lock",
    "RLock",
    "Semaphore",
    "BoundedSemaphore",
    "Condition",
}

#: builtins device code may call (GS005) — arithmetic/iteration only
_DEVICE_BUILTINS = {
    "int",
    "float",
    "min",
    "max",
    "abs",
    "round",
    "len",
    "range",
    "bool",
    "enumerate",
}

#: non-ctx callables from the kernel API whitelisted for GS005
_DEVICE_HELPERS = {"device_array"}

#: the only ``np.random`` attributes host code may call (GS004) — the
#: explicitly seedable Generator/BitGenerator construction API
_SEEDED_RANDOM_API = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def _annotation_name(node: Optional[ast.expr]) -> Optional[str]:
    """Terminal name of an annotation (handles Optional[X], "X", a.b.X)."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1].split("[")[0].strip()
    if isinstance(node, ast.Subscript):
        # Optional[DeviceBuffer], Union[DeviceBuffer, ...] — scan inside
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in _BUFFER_TYPES:
                return sub.id
            if isinstance(sub, ast.Attribute) and sub.attr in _BUFFER_TYPES:
                return sub.attr
    return None


def _call_func_name(call: ast.Call) -> Optional[str]:
    f = call.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return None


class _Linter(ast.NodeVisitor):
    """Single-file linter; ``in_device_layer`` relaxes GS001/tightens GS002."""

    def __init__(self, path: str, *, in_device_layer: bool):
        self.path = path
        self.in_device_layer = in_device_layer
        self.findings: list[LintFinding] = []
        #: names known to hold device-side buffers (module-wide — scope
        #: precision is not worth the complexity for a repo invariant)
        self.buffer_names: set[str] = set()
        #: names assigned from Lock()/RLock()/... constructors (GS003
        #: receivers that are not lock-*named*)
        self.lock_names: set[str] = set()

    # -- bookkeeping: which names hold device buffers -------------------
    def _note_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.buffer_names.add(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Call):
            fn = _call_func_name(node.value)
            if fn in _BUFFER_FACTORIES:
                for t in node.targets:
                    self._note_target(t)
            if fn in _LOCK_CONSTRUCTORS:
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        self.lock_names.add(t.id)
                    elif isinstance(t, ast.Attribute):
                        self.lock_names.add(t.attr)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _annotation_name(node.annotation) in _BUFFER_TYPES:
            self._note_target(node.target)
        elif isinstance(node.value, ast.Call):
            if _call_func_name(node.value) in _BUFFER_FACTORIES:
                self._note_target(node.target)
        self.generic_visit(node)

    def _note_args(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        for a in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            args.vararg,
            args.kwarg,
        ]:
            if a is not None and _annotation_name(a.annotation) in _BUFFER_TYPES:
                self.buffer_names.add(a.arg)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._note_args(node)
        self._check_gs005(node)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_gs006(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._note_args(node)
        self.generic_visit(node)

    # -- GS001 / GS002 / GS003 ------------------------------------------
    def _finding(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            LintFinding(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            not self.in_device_layer
            and node.attr == "data"
            and isinstance(node.value, ast.Name)
            and node.value.id in self.buffer_names
        ):
            self._finding(
                "GS001",
                node,
                f"host code reaches into device buffer "
                f"'{node.value.id}.data'; move bytes with "
                f"to_device/from_device so the cost model sees them",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        if self.in_device_layer and isinstance(fn, ast.Attribute):
            base = fn.value
            if (
                isinstance(base, ast.Name)
                and (base.id, fn.attr) in _WALL_CLOCKS
            ):
                self._finding(
                    "GS002",
                    node,
                    f"wall-clock '{base.id}.{fn.attr}()' inside the "
                    f"simulator; simulated time comes from the cost "
                    f"model (use time.perf_counter for host metering)",
                )
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr == "acquire"
            and self._lockish(fn.value)
        ):
            self._finding(
                "GS003",
                node,
                "bare lock acquire(); use 'with <lock>:' so unwinding "
                "releases it",
            )
        self._check_gs004(node)
        self.generic_visit(node)

    def _lockish(self, node: ast.expr) -> bool:
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Call):
            # inline constructor receiver: threading.Lock().acquire()
            return _call_func_name(node) in _LOCK_CONSTRUCTORS
        if name is None:
            return False
        if name in self.lock_names:
            return True
        low = name.lower()
        return any(frag in low for frag in _LOCKISH)

    # -- GS005 ----------------------------------------------------------
    def _check_gs005(self, node: ast.FunctionDef) -> None:
        """Flag host-only API calls inside ``device_code`` bodies."""
        if node.name != "device_code":
            return
        args = node.args
        positional = [a.arg for a in (*args.posonlyargs, *args.args)]
        kw_names = [a.arg for a in args.kwonlyargs]
        if "ctx" in positional + kw_names:
            ctx_name = "ctx"
        else:
            non_self = [a for a in positional if a != "self"]
            ctx_name = non_self[0] if non_self else "ctx"
        # `raise NotImplementedError(...)` interface stubs are host-side
        # by construction, not device work
        raised = {
            id(s.exc)
            for body_stmt in node.body
            for s in ast.walk(body_stmt)
            if isinstance(s, ast.Raise) and s.exc is not None
        }
        for body_stmt in node.body:
            for sub in ast.walk(body_stmt):
                if not isinstance(sub, ast.Call) or id(sub) in raised:
                    continue
                fn = sub.func
                if isinstance(fn, ast.Attribute):
                    base = fn.value
                    if isinstance(base, ast.Name) and base.id in (
                        ctx_name,
                        "math",
                    ):
                        continue  # ctx.<method> / math intrinsic
                    called = ast.unparse(fn)
                elif isinstance(fn, ast.Name):
                    if fn.id in _DEVICE_BUILTINS or fn.id in _DEVICE_HELPERS:
                        continue
                    called = fn.id
                else:
                    called = ast.unparse(fn)
                self._finding(
                    "GS005",
                    sub,
                    f"device code calls host-only API '{called}(...)'; "
                    f"per-thread code may only use {ctx_name}.<method>, "
                    f"math intrinsics, arithmetic builtins, and "
                    f"kernelapi.device_array",
                )

    # -- GS006 ----------------------------------------------------------
    def _check_gs006(self, cls: ast.ClassDef) -> None:
        """Flag ``device_code`` range loops whose bound names a kernel
        parameter the class's ``value_invariants()`` does not cover."""
        methods = {
            m.name: m
            for m in cls.body
            if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        dc = methods.get("device_code")
        if dc is None or not isinstance(dc, ast.FunctionDef):
            return
        inv = methods.get("value_invariants")
        #: every string literal inside value_invariants() — the lengths/
        #: scalars/elements dict keys and RowRange buffer names; loose on
        #: purpose (a lint must never false-positive on a covered name)
        covered: set[str] = set()
        if inv is not None:
            for stmt in inv.body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Raise):
                        # abstract stub: the contract is absent on purpose
                        return
                    if isinstance(sub, ast.Constant) and isinstance(
                        sub.value, str
                    ):
                        covered.add(sub.value)
        args = dc.args
        params = {
            a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        }
        params.discard("self")
        # the ctx parameter (geometry like ctx.block_dim is always bounded)
        positional = [a.arg for a in (*args.posonlyargs, *args.args)]
        kw_names = [a.arg for a in args.kwonlyargs]
        if "ctx" in positional + kw_names:
            params.discard("ctx")
        else:
            non_self = [a for a in positional if a != "self"]
            if non_self:
                params.discard(non_self[0])
        for body_stmt in dc.body:
            for sub in ast.walk(body_stmt):
                if not isinstance(sub, ast.For):
                    continue
                it = sub.iter
                if not (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Name)
                    and it.func.id == "range"
                ):
                    continue
                names = {
                    n.id
                    for arg in it.args
                    for n in ast.walk(arg)
                    if isinstance(n, ast.Name)
                }
                uncovered = sorted((names & params) - covered)
                if uncovered:
                    self._finding(
                        "GS006",
                        sub,
                        f"device loop bound uses parameter(s) "
                        f"{', '.join(repr(u) for u in uncovered)} not "
                        f"covered by value_invariants(); without a "
                        f"contract the abstract interpreter cannot bound "
                        f"the trip count (KC007 reports the kernel "
                        f"unbounded)",
                    )

    # -- GS004 ----------------------------------------------------------
    def _check_gs004(self, node: ast.Call) -> None:
        fn = node.func
        if not isinstance(fn, ast.Attribute):
            return
        base = fn.value
        # np.random.<attr>(...) / numpy.random.<attr>(...)
        if not (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in ("np", "numpy")
        ):
            return
        if fn.attr not in _SEEDED_RANDOM_API:
            self._finding(
                "GS004",
                node,
                f"global-state 'np.random.{fn.attr}()'; draw from an "
                f"explicit seeded Generator (np.random.default_rng(seed))",
            )
        elif fn.attr == "default_rng" and not node.args and not node.keywords:
            self._finding(
                "GS004",
                node,
                "entropy-seeded 'np.random.default_rng()'; pass an "
                "explicit seed/SeedSequence for reproducible runs",
            )


def _is_device_layer(path: Path) -> bool:
    return any(part in DEVICE_LAYER_DIRS for part in path.parts)


def lint_source(
    source: str, path: str = "<string>", *, in_device_layer: bool = False
) -> list[LintFinding]:
    """Lint one source string; ``path`` is used for reporting only."""
    tree = ast.parse(source, filename=path)
    linter = _Linter(path, in_device_layer=in_device_layer)
    linter.visit(tree)
    return sorted(linter.findings, key=lambda f: (f.line, f.col))


def _is_artifact(path: Path) -> bool:
    """Build/debris directories whose .py files are not source."""
    return any(
        part == "__pycache__" or part.endswith(".egg-info")
        for part in path.parts
    )


def run_lint(paths: Iterable[str]) -> list[LintFinding]:
    """Lint every ``*.py`` under the given files/directories.

    Skips ``__pycache__`` and ``*.egg-info`` artifact directories during
    discovery (explicitly named files are always linted).
    """
    findings: list[LintFinding] = []
    for root in paths:
        rootp = Path(root)
        if rootp.is_dir():
            files = [f for f in sorted(rootp.rglob("*.py")) if not _is_artifact(f)]
        else:
            files = [rootp]
        for f in files:
            findings.extend(
                lint_source(
                    f.read_text(encoding="utf-8"),
                    str(f),
                    in_device_layer=_is_device_layer(f),
                )
            )
    return findings


def _emit(findings: list[LintFinding], fmt: str) -> None:
    if fmt == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
        return
    for f in findings:
        if fmt == "github":
            print(
                f"::error file={f.path},line={f.line},col={f.col},"
                f"title={f.rule}::{f.message}"
            )
        else:
            print(f.render())
    if fmt == "text":
        if findings:
            print(f"gpulint: {len(findings)} finding(s)")
        else:
            print("gpulint: clean")


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis.lint", description="repo-invariant AST lint"
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files/directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (github emits workflow annotations)",
    )
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    findings = run_lint(args.paths)
    _emit(findings, args.format)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
