"""Label-comparison metrics (no sklearn dependency).

DBSCAN labelings are only defined up to (a) a permutation of cluster
ids and (b) the assignment of *border* points that are ε-reachable from
more than one cluster — an order-dependence acknowledged in the original
DBSCAN paper.  :func:`same_clustering` tests strict equality modulo (a);
:func:`dbscan_equivalent` additionally tolerates (b), which is the right
equivalence when comparing two correct DBSCAN implementations.
"""

from __future__ import annotations

import numpy as np

from repro.core.neighbor_table import NeighborTable
from repro.core.table_dbscan import NOISE, canonicalize_labels, core_mask

__all__ = [
    "same_clustering",
    "dbscan_equivalent",
    "adjusted_rand_index",
    "cluster_sizes",
    "noise_fraction",
]


def _check_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"label shapes differ: {a.shape} vs {b.shape}")
    return a, b


def same_clustering(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact partition equality modulo cluster-id permutation."""
    a, b = _check_pair(a, b)
    if not np.array_equal(a == NOISE, b == NOISE):
        return False
    return np.array_equal(canonicalize_labels(a), canonicalize_labels(b))


def dbscan_equivalent(
    a: np.ndarray,
    b: np.ndarray,
    table: NeighborTable,
    minpts: int,
) -> bool:
    """DBSCAN-correct equivalence of two labelings over the same ``T``.

    Requires: identical noise sets, identical clustering of *core*
    points (modulo permutation), and every border point assigned — in
    each labeling — to the cluster of one of its own core neighbors.

    Labels must be in the same (table/sorted) point order as ``table``.
    """
    a, b = _check_pair(a, b)
    if not np.array_equal(a == NOISE, b == NOISE):
        return False
    core = core_mask(table, minpts)
    if not np.array_equal(
        canonicalize_labels(a[core]), canonicalize_labels(b[core])
    ):
        return False
    border = (~core) & (a != NOISE)
    # canonical frame defined over core points only; both canonical
    # forms number clusters by their lowest core member, so they agree
    a_can = canonicalize_labels(np.where(core, a, NOISE))
    b_can = canonicalize_labels(np.where(core, b, NOISE))

    def raw_to_canon(raw: np.ndarray, canon: np.ndarray) -> dict[int, int]:
        core_ids = np.flatnonzero(core)
        return dict(zip(raw[core_ids].tolist(), canon[core_ids].tolist(), strict=True))

    map_a = raw_to_canon(a, a_can)
    map_b = raw_to_canon(b, b_can)
    for p in np.flatnonzero(border):
        nbrs = table.neighbors(p)
        nbr_clusters = set(a_can[nbrs[core[nbrs]]].tolist())
        # every cluster containing a border point contains a core point,
        # so the raw label is always in the map
        if map_a.get(int(a[p])) not in nbr_clusters:
            return False
        if map_b.get(int(b[p])) not in nbr_clusters:
            return False
    return True


def adjusted_rand_index(a: np.ndarray, b: np.ndarray) -> float:
    """Adjusted Rand Index between two labelings (noise is one class)."""
    a, b = _check_pair(a, b)
    n = len(a)
    if n == 0:
        return 1.0
    # contingency table via joint codes
    _, ai = np.unique(a, return_inverse=True)
    _, bi = np.unique(b, return_inverse=True)
    nb = bi.max() + 1
    joint = ai.astype(np.int64) * nb + bi
    counts = np.bincount(joint, minlength=(ai.max() + 1) * nb).reshape(-1, nb)

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) / 2.0

    sum_ij = comb2(counts).sum()
    sum_a = comb2(counts.sum(axis=1)).sum()
    sum_b = comb2(counts.sum(axis=0)).sum()
    total = comb2(np.array([n]))[0]
    expected = sum_a * sum_b / total if total else 0.0
    max_index = (sum_a + sum_b) / 2.0
    if max_index == expected:
        return 1.0
    return float((sum_ij - expected) / (max_index - expected))


def cluster_sizes(labels: np.ndarray) -> np.ndarray:
    """Sizes of clusters 0..k-1 (noise excluded), descending."""
    labels = np.asarray(labels)
    member = labels[labels != NOISE]
    if len(member) == 0:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.bincount(member))[::-1]


def noise_fraction(labels: np.ndarray) -> float:
    labels = np.asarray(labels)
    return float((labels == NOISE).mean()) if len(labels) else 0.0
