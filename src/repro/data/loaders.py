"""Point I/O and normalization utilities.

The SW datasets the paper uses are published as flat point files
(dbscandat.zip); these loaders accept the equivalent ``.npy``/``.csv``
layouts so real data can be dropped in for the synthetic analogues.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.index.base import as_points

__all__ = ["load_points", "save_points", "normalize_extent", "bounding_box"]

PathLike = Union[str, Path]


def load_points(path: PathLike) -> np.ndarray:
    """Load an ``(n, 2)`` point array from ``.npy`` or ``.csv``/``.txt``.

    CSV files may carry extra columns (the SW files carry measurement
    metadata); only the first two are used.
    """
    p = Path(path)
    if not p.exists():
        raise FileNotFoundError(p)
    if p.suffix == ".npy":
        arr = np.load(p)
    elif p.suffix in (".csv", ".txt", ".dat"):
        arr = np.loadtxt(p, delimiter="," if p.suffix == ".csv" else None, ndmin=2)
    else:
        raise ValueError(f"unsupported point file type: {p.suffix}")
    if arr.ndim != 2 or arr.shape[1] < 2:
        raise ValueError(f"expected at least 2 columns, got shape {arr.shape}")
    return as_points(arr[:, :2])


def save_points(points: np.ndarray, path: PathLike) -> Path:
    """Save points as ``.npy`` (exact) or ``.csv``."""
    pts = as_points(points)
    p = Path(path)
    if p.suffix == ".npy":
        np.save(p, pts)
    elif p.suffix == ".csv":
        np.savetxt(p, pts, delimiter=",", fmt="%.17g")
    else:
        raise ValueError(f"unsupported point file type: {p.suffix}")
    return p


def bounding_box(points: np.ndarray) -> tuple[float, float, float, float]:
    """``(xmin, ymin, xmax, ymax)`` of a point set."""
    pts = as_points(points)
    (xmin, ymin), (xmax, ymax) = pts.min(axis=0), pts.max(axis=0)
    return float(xmin), float(ymin), float(xmax), float(ymax)


def normalize_extent(points: np.ndarray, side: float = 1.0) -> np.ndarray:
    """Translate/scale points into ``[0, side]²`` preserving aspect ratio."""
    pts = as_points(points)
    xmin, ymin, xmax, ymax = bounding_box(pts)
    span = max(xmax - xmin, ymax - ymin)
    if span == 0:
        return np.zeros_like(pts)
    return (pts - np.array([xmin, ymin])) * (side / span)
