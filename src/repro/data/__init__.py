"""Dataset substrates.

The paper evaluates on two real dataset families we cannot redistribute:
ionospheric total-electron-content measurements (SW1/SW4) and SDSS DR12
galaxy samples (SDSS1–3).  :mod:`repro.data.synthetic` generates
deterministic synthetic analogues that preserve the properties the
paper's conclusions depend on — SW's heavy over-densities around
receiver sites versus SDSS's near-uniform field — at sizes scaled by
``REPRO_SCALE`` (default 1/100 of the paper's counts).
"""

from repro.data.loaders import load_points, save_points
from repro.data.scale import DATASETS, DatasetSpec, get_scale, scaled_size
from repro.data.synthetic import (
    dataset,
    density_profile,
    make_sdss,
    make_sw,
)

__all__ = [
    "dataset",
    "make_sw",
    "make_sdss",
    "density_profile",
    "DATASETS",
    "DatasetSpec",
    "get_scale",
    "scaled_size",
    "load_points",
    "save_points",
]
