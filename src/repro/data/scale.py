"""Dataset registry and the ``REPRO_SCALE`` size scaling.

The paper's datasets hold 1.9M–15.2M points; the pure-Python reference
implementation makes full-size runs impractical here, so all benches use
``REPRO_SCALE``-scaled sizes (default 0.01) that preserve the paper's
size *ordering* (SW1 < SDSS1 < SDSS2 ≈ SW4 < SDSS3).  Spatial extents
are chosen per dataset so the paper's own ε values remain meaningful:
each spec fixes a reference ε (the midpoint of its S2 sweep) and a
target mean ε-neighborhood size, from which the generator derives the
domain side length.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["DatasetSpec", "DATASETS", "get_scale", "scaled_size"]

#: environment variable controlling dataset sizes
SCALE_ENV = "REPRO_SCALE"
DEFAULT_SCALE = 0.01


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one of the paper's datasets."""

    name: str
    #: point count in the paper
    paper_n: int
    #: "sw" (skewed, receiver clumps) or "sdss" (near-uniform)
    family: str
    #: reference ε (midpoint of the dataset's S2 sweep)
    eps_ref: float
    #: target mean |N_ε(p)| at eps_ref — sets the generated density
    target_neighbors: float
    #: S2 ε sweep (Table III)
    s2_eps: tuple[float, ...]
    #: S3 ε values (Table V)
    s3_eps: tuple[float, ...]
    #: S3 minpts grid (Table V)
    s3_minpts: tuple[int, ...]
    #: Table I ε probes
    t1_eps: tuple[float, ...]
    #: Table II kernel-efficiency ε
    t2_eps: float


def _steps(start: float, stop: float, step: float) -> tuple[float, ...]:
    n = int(round((stop - start) / step)) + 1
    return tuple(round(start + i * step, 10) for i in range(n))


_MINPTS_A = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 200, 400, 800, 1000, 2000, 3000)
_MINPTS_B = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 65, 70, 75, 80)
_MINPTS_C = (5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150)

DATASETS: dict[str, DatasetSpec] = {
    "SW1": DatasetSpec(
        name="SW1",
        paper_n=1_864_620,
        family="sw",
        eps_ref=0.8,
        target_neighbors=60.0,
        s2_eps=_steps(0.1, 1.5, 0.1),
        s3_eps=(0.3, 0.5, 0.7),
        s3_minpts=_MINPTS_A,
        t1_eps=(0.20, 1.40),
        t2_eps=0.2,
    ),
    "SW4": DatasetSpec(
        name="SW4",
        paper_n=5_159_737,
        family="sw",
        eps_ref=0.3,
        target_neighbors=60.0,
        s2_eps=_steps(0.1, 0.5, 0.05),
        s3_eps=(0.1, 0.2, 0.3),
        s3_minpts=_MINPTS_A,
        t1_eps=(0.15, 0.45),
        t2_eps=0.07,
    ),
    "SDSS1": DatasetSpec(
        name="SDSS1",
        paper_n=2_000_000,
        family="sdss",
        eps_ref=0.8,
        target_neighbors=40.0,
        s2_eps=_steps(0.1, 1.5, 0.1),
        s3_eps=(0.3, 0.5, 0.7),
        s3_minpts=_MINPTS_B,
        t1_eps=(0.20, 1.40),
        t2_eps=0.2,
    ),
    "SDSS2": DatasetSpec(
        name="SDSS2",
        paper_n=5_000_000,
        family="sdss",
        eps_ref=0.3,
        target_neighbors=40.0,
        s2_eps=_steps(0.1, 0.5, 0.05),
        s3_eps=(0.2, 0.3, 0.4),
        s3_minpts=_MINPTS_C,
        t1_eps=(0.15, 0.45),
        t2_eps=0.07,
    ),
    "SDSS3": DatasetSpec(
        name="SDSS3",
        paper_n=15_228_633,
        family="sdss",
        eps_ref=0.095,
        target_neighbors=25.0,
        s2_eps=_steps(0.06, 0.13, 0.01),
        s3_eps=(0.07, 0.11, 0.15),
        s3_minpts=_MINPTS_B,
        t1_eps=(0.07, 0.12),
        t2_eps=0.07,
    ),
}


def get_scale(override: float | None = None) -> float:
    """Current size scale: explicit override > env var > default 0.01."""
    if override is not None:
        scale = float(override)
    else:
        scale = float(os.environ.get(SCALE_ENV, DEFAULT_SCALE))
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    return scale


def scaled_size(name: str, scale: float | None = None) -> int:
    """Point count for a dataset at the current scale."""
    spec = DATASETS[name]
    return max(100, int(round(spec.paper_n * get_scale(scale))))
