"""Synthetic analogues of the paper's SW and SDSS datasets.

The paper's conclusions hinge on two distributional regimes:

* **SW** (ionospheric TEC from GPS receivers): *heavily over-dense* —
  most points concentrate in clumps around receiver sites over a sparse
  background ("SW- has many overdense regions as a function of the
  relative locations of GPS receivers");
* **SDSS** (galaxy samples): *near-uniform* with mild large-scale
  structure ("SDSS- is more uniformly distributed").

Generators produce the shape in a unit square and then **calibrate the
domain side length** so the mean ε-neighborhood size at the dataset's
reference ε matches the spec's target — this is what keeps the paper's
published ε sweeps meaningful at ``REPRO_SCALE``-reduced point counts.
All generation is deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._nputil import expand_ranges
from repro.data.scale import DATASETS, DatasetSpec, scaled_size
from repro.index.grid import GridIndex

__all__ = [
    "make_sw",
    "make_sdss",
    "dataset",
    "density_profile",
    "DensityProfile",
    "mean_neighbors",
]


# ----------------------------------------------------------------------
# shape generators (unit square)
# ----------------------------------------------------------------------
def make_sw(
    n: int,
    seed: int = 0,
    *,
    n_receivers: Optional[int] = None,
    clump_fraction: float = 0.75,
    clump_sigma: float = 0.008,
    domain: float = 1.0,
) -> np.ndarray:
    """SW-like points: dense Gaussian clumps around receiver sites.

    ``clump_fraction`` of the points gather around ``n_receivers``
    sites (receiver-weighted, so some sites are much denser than
    others); the rest is a uniform background.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    m = n_receivers or max(20, n // 2500)
    sites = rng.random((m, 2))
    # receivers observe different traffic: power-law weights
    weights = rng.pareto(1.5, m) + 1.0
    weights /= weights.sum()

    n_clump = int(round(clump_fraction * n))
    which = rng.choice(m, size=n_clump, p=weights)
    clump = sites[which] + rng.normal(0.0, clump_sigma, (n_clump, 2))
    background = rng.random((n - n_clump, 2))
    pts = np.vstack([clump, background])
    np.clip(pts, 0.0, 1.0, out=pts)
    rng.shuffle(pts, axis=0)
    return pts * domain


def make_sdss(
    n: int,
    seed: int = 0,
    *,
    blob_fraction: float = 0.25,
    n_blobs: Optional[int] = None,
    blob_sigma: float = 0.02,
    domain: float = 1.0,
) -> np.ndarray:
    """SDSS-like points: near-uniform field with mild soft blobs
    (large-scale-structure overdensities)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    k = n_blobs or max(30, n // 4000)
    centers = rng.random((k, 2))
    n_blob = int(round(blob_fraction * n))
    which = rng.integers(0, k, n_blob)
    blob = centers[which] + rng.normal(0.0, blob_sigma, (n_blob, 2))
    uniform = rng.random((n - n_blob, 2))
    pts = np.vstack([blob, uniform])
    np.clip(pts, 0.0, 1.0, out=pts)
    rng.shuffle(pts, axis=0)
    return pts * domain


# ----------------------------------------------------------------------
# density diagnostics and calibration
# ----------------------------------------------------------------------
def _sample_neighbor_counts(
    points: np.ndarray, eps: float, sample_fraction: float = 0.02
) -> np.ndarray:
    """Per-point ε-neighbor counts over a strided sample (vectorized)."""
    grid = GridIndex.build(points, eps)
    n = len(grid)
    stride = max(1, int(round(1 / max(sample_fraction, 1e-9))))
    ids = np.arange(0, n, stride, dtype=np.int64)
    nbr = grid.neighbor_cells_of_points(grid.cell_of_point[ids])
    valid = nbr >= 0
    safe = np.where(valid, nbr, 0)
    starts = np.where(valid, grid.cell_min[safe], -1)
    ends = np.where(valid, grid.cell_max[safe], -1)
    rep, flat = expand_ranges(
        np.repeat(np.arange(len(ids)), nbr.shape[1]), starts.ravel(), ends.ravel()
    )
    cand = grid.lookup[flat]
    diff = grid.points[ids[rep]] - grid.points[cand]
    hit = (diff[:, 0] ** 2 + diff[:, 1] ** 2) <= eps * eps
    return np.bincount(rep[hit], minlength=len(ids))


def mean_neighbors(
    points: np.ndarray, eps: float, sample_fraction: float = 0.02
) -> float:
    """Mean |N_ε(p)| over a sample (includes the point itself)."""
    return float(_sample_neighbor_counts(points, eps, sample_fraction).mean())


@dataclass(frozen=True)
class DensityProfile:
    """Neighborhood-size distribution diagnostics at a given ε."""

    eps: float
    mean: float
    median: float
    p95: float
    max: float

    @property
    def skewness_ratio(self) -> float:
        """max/mean — large for SW-like clumpy data, small for SDSS-like."""
        return self.max / self.mean if self.mean else 0.0


def density_profile(
    points: np.ndarray, eps: float, sample_fraction: float = 0.02
) -> DensityProfile:
    counts = _sample_neighbor_counts(points, eps, sample_fraction)
    return DensityProfile(
        eps=float(eps),
        mean=float(counts.mean()),
        median=float(np.median(counts)),
        p95=float(np.percentile(counts, 95)),
        max=float(counts.max()),
    )


def _calibrate_domain(
    unit_points: np.ndarray, eps_ref: float, target: float
) -> float:
    """Find the domain side L so mean |N_ε_ref| ≈ target.

    Mean neighborhood size decreases monotonically with L (density
    ~ n/L²), so a short bisection on log L converges quickly; counts
    are evaluated on a 2% sample.
    """
    # initial guess from the uniform approximation: target ≈ n π ε² / L²
    n = len(unit_points)
    L = float(np.sqrt(max(n * np.pi * eps_ref**2 / target, 1e-12)))
    lo, hi = L / 16, L * 16
    for _ in range(24):
        mid = float(np.sqrt(lo * hi))
        m = mean_neighbors(unit_points * mid, eps_ref)
        if abs(m - target) / target < 0.05:
            return mid
        if m > target:  # too dense -> grow the domain
            lo = mid
        else:
            hi = mid
    return float(np.sqrt(lo * hi))


# per-process cache: calibration is deterministic but not free
_dataset_cache: dict[tuple[str, int, int], np.ndarray] = {}


def dataset(
    name: str, *, scale: Optional[float] = None, seed: int = 0
) -> np.ndarray:
    """Generate the named dataset at the current scale (cached).

    The result is density-calibrated: the mean ε-neighborhood at the
    spec's reference ε matches ``spec.target_neighbors`` within ~5%, so
    the paper's ε grids behave comparably on the scaled data.
    """
    spec: DatasetSpec = DATASETS[name]
    n = scaled_size(name, scale)
    key = (name, n, seed)
    if key in _dataset_cache:
        return _dataset_cache[key]
    if spec.family == "sw":
        unit = make_sw(n, seed=seed)
    else:
        unit = make_sdss(n, seed=seed)
    L = _calibrate_domain(unit, spec.eps_ref, spec.target_neighbors)
    pts = unit * L
    _dataset_cache[key] = pts
    return pts
